"""Tests for the Ariadne facade (the Figure 1/2 workflows)."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.core.ariadne import Ariadne
from repro.errors import ReproError
from repro.graph.generators import web_graph, with_random_weights


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(100, avg_degree=5, target_diameter=8, seed=51), seed=51
    )


@pytest.fixture(scope="module")
def ariadne(wgraph):
    return Ariadne(wgraph, SSSP(source=0))


@pytest.fixture(scope="module")
def store(ariadne):
    return ariadne.capture().store


class TestWorkflows:
    def test_baseline(self, ariadne):
        result = ariadne.baseline()
        assert result.values[0] == 0.0

    def test_online_query(self, ariadne):
        result = ariadne.query_online(Q.SSSP_WCC_UPDATE_CHECK_QUERY)
        assert result.query.mode == "online"
        assert result.store is None

    def test_capture_default_is_full(self, store):
        assert set(store.relations()) >= {"value", "superstep"}

    def test_offline_modes(self, ariadne, store):
        layered = ariadne.query_offline(store, Q.SSSP_WCC_STABILITY_QUERY)
        naive = ariadne.query_offline(
            store, Q.SSSP_WCC_STABILITY_QUERY, mode="naive"
        )
        ref = ariadne.query_offline(
            store, Q.SSSP_WCC_STABILITY_QUERY, mode="reference"
        )
        assert layered.rows("problem") == naive.rows("problem") == ref.rows("problem")

    def test_unknown_mode(self, ariadne, store):
        with pytest.raises(ReproError, match="unknown offline mode"):
            ariadne.query_offline(store, Q.SSSP_WCC_STABILITY_QUERY, mode="x")

    def test_apt_online(self, ariadne):
        result = ariadne.apt(epsilon=0.1)
        counts = {r: result.query.count(r) for r in ("safe", "unsafe")}
        assert counts["safe"] + counts["unsafe"] == result.query.count(
            "no_execute"
        )

    def test_apt_offline_needs_store(self, ariadne, store):
        with pytest.raises(ReproError, match="store"):
            ariadne.apt(epsilon=0.1, mode="layered")
        result = ariadne.apt(epsilon=0.1, mode="layered", store=store)
        online = ariadne.apt(epsilon=0.1)
        assert result.rows("safe") == online.query.rows("safe")

    def test_backward_lineage(self, ariadne, store):
        sigma = store.max_superstep
        alpha = next(x for x, i in store.rows("superstep") if i == sigma)
        result = ariadne.backward_lineage(store, alpha, sigma)
        assert result.count("back_trace") >= 1
        # lineage always bottoms out at superstep 0
        assert all(i == 0 for _x, i in [
            (x, 0) for x, _d in result.rows("back_lineage")
        ])

    def test_udf_diff_registered_automatically(self, wgraph):
        # PageRank and SSSP get different diff functions but the same query.
        a_pr = Ariadne(wgraph, PageRank(num_supersteps=8))
        result = a_pr.apt(epsilon=0.01)
        assert "change" in result.query.relations()


class TestFacadeExtensions:
    def test_monitor_suite_sssp(self, ariadne):
        results = ariadne.monitor("sssp")
        assert set(results) == {"query5", "query6"}
        assert results["query5"].query.count("check_failed") == 0
        assert results["query6"].query.count("problem") == 0

    def test_monitor_infers_name(self, wgraph):
        from repro.analytics.wcc import WCC

        results = Ariadne(wgraph, WCC()).monitor()
        assert set(results) == {"query5", "query6"}

    def test_monitor_unknown_analytic(self, wgraph):
        from repro.analytics.bfs import BFS

        with pytest.raises(ReproError, match="monitoring"):
            Ariadne(wgraph, BFS(source=0)).monitor()

    def test_capture_for_backward(self, ariadne, store):
        custom = ariadne.capture_for_backward()
        assert set(custom.store.relations()) == {
            "prov_value", "prov_send", "prov_edges",
        }
        sigma = store.max_superstep
        alpha = next(x for x, i in store.rows("superstep") if i == sigma)
        full = ariadne.backward_lineage(store, alpha, sigma)
        q12 = ariadne.backward_lineage(
            custom.store, alpha, sigma, custom=True
        )
        assert q12.rows("back_trace") == full.rows("back_trace")

    def test_explain(self, ariadne):
        text = ariadne.explain(
            "change(X, I) :- value(X, D1, I), value(X, D2, J), "
            "evolution(X, J, I), udf_diff(D1, D2, $eps).",
            params={"eps": 0.1},
        )
        assert "direction: local" in text
        assert "anchored on I" in text
