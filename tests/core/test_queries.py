"""The paper's query library: every query compiles with the classification
its evaluation section requires."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.core import queries as Q
from repro.pql.analysis import (
    DIRECTION_BACKWARD,
    DIRECTION_FORWARD,
    DIRECTION_LOCAL,
    compile_query,
)
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry


def compile_text(text, **params):
    program = parse(text)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return compile_query(program, functions=funcs)


class TestAptQuery:
    def test_forward_and_online_eligible(self):
        cq = compile_text(Q.APT_QUERY, eps=0.01)
        assert cq.direction == DIRECTION_FORWARD
        assert cq.online_eligible
        assert cq.head_predicates == {
            "change", "neighbor_change", "no_execute", "safe", "unsafe",
        }

    def test_ships_only_change(self):
        cq = compile_text(Q.APT_QUERY, eps=0.01)
        assert cq.remote_relations == {"change"}

    def test_captures_only_what_it_reads(self):
        # "the apt query refers only to the vertex values and not the
        # message values, hence ARIADNE does not need to capture those"
        cq = compile_text(Q.APT_QUERY, eps=0.01)
        assert cq.auto_capture == {
            "value", "evolution", "superstep", "receive_message",
        }
        assert "send_message" not in cq.auto_capture
        assert "edge_value" not in cq.auto_capture

    def test_udfs_threshold_semantics(self):
        udfs = Q.apt_udfs(PageRank())
        assert udfs["udf_diff"](1.0, 1.005, 0.01)  # small update
        assert not udfs["udf_diff"](1.0, 1.5, 0.01)  # large update


class TestCaptureQueries:
    def test_query2_is_online_eligible(self):
        cq = compile_text(Q.CAPTURE_FULL_QUERY)
        assert cq.online_eligible
        assert cq.uses_stream
        assert cq.head_predicates == {
            "value", "send_message", "receive_message", "superstep",
            "evolution",
        }

    def test_query3_is_forward_recursive(self):
        cq = compile_text(Q.CAPTURE_FWD_LINEAGE_QUERY, source=0)
        assert cq.direction == DIRECTION_FORWARD
        assert cq.remote_relations == {"fwd_lineage"}

    def test_query11_prov_edges_topology(self):
        cq = compile_text(Q.CAPTURE_BACKWARD_CUSTOM_QUERY)
        assert cq.idb_schemas["prov_edges"].topology == "edge"
        assert cq.idb_schemas["prov_send"].time_index == 1
        assert cq.idb_schemas["prov_value"].time_index == 1
        assert len(cq.static_rules) == 1  # prov_edges


class TestMonitoringQueries:
    def test_query4(self):
        cq = compile_text(Q.PAGERANK_CHECK_QUERY)
        assert cq.direction == DIRECTION_LOCAL
        assert cq.static_rules[0].head_predicate == "has_in"

    def test_query5_and_6(self):
        for text in (Q.SSSP_WCC_UPDATE_CHECK_QUERY, Q.SSSP_WCC_STABILITY_QUERY):
            cq = compile_text(text)
            assert cq.online_eligible
            assert "receive_message" in cq.auto_capture

    def test_query7(self):
        cq = compile_text(Q.ALS_ERROR_RANGE_QUERY)
        assert cq.online_eligible
        assert cq.auto_capture == {"edge_value"}

    def test_query8_aggregates_stratified(self):
        cq = compile_text(Q.ALS_ERROR_TREND_QUERY, eps=0.5)
        strata = {c.head_predicate: c.stratum for c in cq.rules}
        assert strata["sum_error"] > strata["prov_error"]
        assert strata["problem"] >= strata["avg_error"]

    def test_registry_covers_all_analytics(self):
        assert set(Q.MONITORING_QUERIES) == {"pagerank", "sssp", "wcc", "als"}


class TestBackwardQueries:
    def test_query10(self):
        cq = compile_text(Q.BACKWARD_LINEAGE_FULL_QUERY, alpha=0, sigma=5)
        assert cq.direction == DIRECTION_BACKWARD
        assert not cq.online_eligible
        assert cq.layered_eligible

    def test_query12_needs_store_schemas(self):
        # Query 12 references captured relations; compiling against the core
        # registry alone must fail cleanly.
        from repro.errors import PQLSemanticError

        with pytest.raises(PQLSemanticError, match="unknown predicate"):
            compile_text(Q.BACKWARD_LINEAGE_CUSTOM_QUERY, alpha=0, sigma=5)
