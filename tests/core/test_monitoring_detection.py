"""The monitoring queries must actually *detect* the failure classes they
were designed for — each test injects the corresponding bug and asserts the
query fires (the happy-path zeros are asserted elsewhere)."""

import pytest

from repro.analytics.als import ALS
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.engine.vertex import VertexProgram
from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import movielens_like, web_graph, with_random_weights
from repro.runtime.online import run_online


class TestQuery4Detection:
    def test_flags_message_to_non_neighbor(self):
        g = from_edge_list([(0, 1)])
        g.add_vertex(7)

        class Buggy(VertexProgram):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send(7, "stray")
                ctx.vote_to_halt()

        result = run_online(g, Buggy(), Q.PAGERANK_CHECK_QUERY)
        assert result.query.rows("check_failed") == [(7, 0, 1)]


class TestQuery5Detection:
    def test_flags_increasing_distance(self):
        """A vertex program that wrongly *increases* its value violates the
        monotonicity invariant Query 5 encodes for SSSP/WCC."""
        g = from_edge_list([(0, 1)])

        class Buggy(VertexProgram):
            def initial_value(self, vertex_id, graph):
                return 10.0

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_to_all(1.0)
                elif messages:
                    ctx.set_value(ctx.value + 5.0)  # wrong direction!
                ctx.vote_to_halt()

        result = run_online(g, Buggy(), Q.SSSP_WCC_UPDATE_CHECK_QUERY)
        assert (1, 1) in result.query.rows("check_failed")

    def test_flags_spontaneous_update(self):
        """An update without any received message is the other Query 5
        failure mode."""
        g = from_edge_list([(0, 1)])

        class Buggy(VertexProgram):
            def initial_value(self, vertex_id, graph):
                return 10.0

            def compute(self, ctx, messages):
                if ctx.superstep < 2 and ctx.vertex_id == 0:
                    ctx.set_value(ctx.value - 1.0)  # no messages involved
                    ctx.send(0, "self-wake") if ctx.superstep == 0 else None
                ctx.vote_to_halt()

        result = run_online(g, Buggy(), Q.SSSP_WCC_UPDATE_CHECK_QUERY)
        # superstep 0 has no previous value; the superstep-1 update came
        # with a message (self-wake), so instead drive superstep 2 wake:
        # simplest check: the updated-without-received rule is exercised
        # through the 'updated' relation
        assert result.query.count("updated") >= 1


class TestQuery6Detection:
    def test_flags_change_without_messages(self):
        g = from_edge_list([(0, 1)])

        class Drifter(VertexProgram):
            """Stays active by messaging a neighbor, drifts its own value."""

            def initial_value(self, vertex_id, graph):
                return 0.0

            def compute(self, ctx, messages):
                if ctx.vertex_id == 0 and ctx.superstep < 3:
                    # keeps itself awake without *receiving* anything
                    ctx.set_value(ctx.value + 1.0)
                    ctx.send_to_all("noise")
                    return  # never halts until superstep 3
                ctx.vote_to_halt()

        result = run_online(g, Drifter(), Q.SSSP_WCC_STABILITY_QUERY)
        problems = result.query.rows("problem")
        assert (0, 1) in problems and (0, 2) in problems


class TestQuery7Detection:
    def test_blames_corrupt_input(self):
        ratings = movielens_like(40, 20, 300, num_features=3, seed=3)
        item = ratings.user_ratings(5)[0][0]
        ratings.add_rating(5, item, 30.0)  # far outside 0-5
        graph = ratings.to_digraph()
        result = run_online(
            graph, ALS(ratings, num_features=3, max_rounds=3),
            Q.ALS_ERROR_RANGE_QUERY,
        )
        flagged_users = {x for x, _y, _i in result.query.rows("input_failed")}
        assert 5 in flagged_users


class TestAuditQueries:
    def test_negative_weight_audit(self):
        g = with_random_weights(
            web_graph(150, avg_degree=5, target_diameter=8, seed=9), seed=9
        )
        u, (v, _w) = 10, g.out_edges(10)[0]
        g.set_edge_value(u, v, -4.0)
        audit = "suspicious(X, Y, M, I) :- receive_message(X, Y, M, I), M < 0.0."
        from repro.engine.config import EngineConfig
        from repro.core.ariadne import Ariadne

        ariadne = Ariadne(
            g, SSSP(source=0), config=EngineConfig(max_supersteps=20)
        )
        result = ariadne.query_online(audit)
        senders = {y for _x, y, _m, _i in result.query.rows("suspicious")}
        assert senders  # the corruption is caught in-flight
