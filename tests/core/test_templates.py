"""Tests for the PQL query-template generators."""

import pytest

from repro.core import templates as T
from repro.core.queries import apt_udfs
from repro.analytics.sssp import SSSP
from repro.analytics.kcore import KCore
from repro.errors import PQLSemanticError
from repro.graph.generators import web_graph, with_random_weights
from repro.pql.analysis import compile_query
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(120, avg_degree=5, target_diameter=8, seed=71), seed=71
    )


def compiles(text, **params):
    program = parse(text)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return compile_query(program, functions=funcs)


class TestGeneration:
    def test_every_template_compiles(self):
        cases = [
            T.monotonic_check("decreasing"),
            T.monotonic_check("increasing"),
            T.value_range_check(0.0, 5.0),
            T.message_range_check(-1.0, 1.0),
            T.update_requires_message(),
            T.unexpected_sender_check(),
            T.stuck_vertex_check(10),
        ]
        for text in cases:
            cq = compiles(text)
            assert cq.online_eligible

    def test_lineage_templates_compile(self):
        assert compiles(T.forward_lineage(), source=0).direction == "forward"
        assert compiles(
            T.backward_lineage(), alpha=0, sigma=3
        ).direction == "backward"

    def test_apt_template_matches_library(self):
        cq = compiles(T.approximation_audit(), eps=0.1)
        assert cq.head_predicates == {
            "change", "neighbor_change", "no_execute", "safe", "unsafe",
        }

    def test_bad_direction_rejected(self):
        with pytest.raises(PQLSemanticError):
            T.monotonic_check("sideways")

    def test_bad_name_rejected(self):
        with pytest.raises(PQLSemanticError):
            T.value_range_check(0, 1, result="BadName")

    def test_combine(self):
        text = T.combine(
            T.monotonic_check("decreasing", result="mono_bad"),
            T.value_range_check(0.0, 100.0, result="range_bad"),
        )
        cq = compiles(text)
        assert cq.head_predicates == {"mono_bad", "range_bad"}


class TestTemplatesEndToEnd:
    def test_monotonic_check_clean_on_sssp(self, wgraph):
        result = run_online(
            wgraph, SSSP(source=0), T.monotonic_check("decreasing")
        )
        assert result.query.count("check_failed") == 0

    def test_monotonic_check_fires_on_violation(self, wgraph):
        # increasing-check on SSSP must flag every improvement
        result = run_online(
            wgraph, SSSP(source=0), T.monotonic_check("increasing")
        )
        assert result.query.count("check_failed") > 0

    def test_value_range_check_on_kcore(self, wgraph):
        result = run_online(
            wgraph, KCore(), T.value_range_check(0.0, 10_000.0)
        )
        assert result.query.count("out_of_range") == 0

    def test_stuck_vertex_check(self, wgraph):
        result = run_online(
            wgraph, SSSP(source=0), T.stuck_vertex_check(2)
        )
        # deep graphs still update distances after superstep 2
        assert result.query.count("stuck") > 0
        assert all(i > 2 for _x, i in result.query.rows("stuck"))
