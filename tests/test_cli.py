"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.graph.generators import chain_graph, web_graph, with_random_weights
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph.txt"
    g = with_random_weights(
        web_graph(80, avg_degree=4, target_diameter=6, seed=81), seed=81
    )
    write_edge_list(g, path, weighted=True)
    return str(path)


class TestCLI:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "IN-04" in out and "UK-05" in out

    def test_run(self, graph_file, capsys):
        code = main(["run", "--analytic", "sssp", "--graph", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "supersteps:" in out

    def test_monitor_named_query(self, graph_file, capsys):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "check_failed: 0 rows" in out

    def test_monitor_inline_query(self, graph_file, capsys):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "got(X, I) :- receive_message(X, Y, M, I).",
        ])
        assert code == 0
        assert "got:" in capsys.readouterr().out

    def test_apt(self, graph_file, capsys):
        code = main([
            "apt", "--analytic", "sssp", "--graph", graph_file,
            "--eps", "0.1",
        ])
        assert code == 0
        assert "verdict" in capsys.readouterr().out

    def test_capture_query_inspect_roundtrip(self, graph_file, tmp_path,
                                             capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        assert os.path.exists(os.path.join(store_dir, "static.slab"))
        capsys.readouterr()

        assert main([
            "query", "--store", store_dir, "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0",
            "--show", "back_lineage",
        ]) == 0
        out = capsys.readouterr().out
        assert "back_trace:" in out

        assert main(["inspect", "--store", store_dir]) == 0
        assert "provenance store" in capsys.readouterr().out

        assert main(["inspect", "--store", store_dir, "--vertex", "0"]) == 0
        assert "vertex 0" in capsys.readouterr().out

    def test_capture_sync_raw_spill(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "prov-raw")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir, "--spill-sync", "--spill-compression", "raw",
        ]) == 0
        out = capsys.readouterr().out
        assert "(raw, sync)" in out
        assert os.path.exists(os.path.join(store_dir, "static.slab"))

        assert main(["inspect", "--store", store_dir]) == 0
        assert "provenance store" in capsys.readouterr().out

    def test_capture_default_is_async_zlib(self, graph_file, tmp_path,
                                           capsys):
        store_dir = str(tmp_path / "prov-zlib")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        assert "(zlib, async)" in capsys.readouterr().out

    def test_missing_query_errors(self, graph_file, capsys):
        code = main(["monitor", "--analytic", "sssp", "--graph", graph_file])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_param_errors(self, graph_file):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5", "--param", "oops",
        ])
        assert code == 2

    def test_unknown_analytic_errors(self, graph_file):
        code = main(["run", "--analytic", "nope", "--graph", graph_file])
        assert code == 2


class TestObservabilityFlags:
    def test_run_prints_metrics_line(self, graph_file, capsys):
        assert main(["run", "--analytic", "sssp", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "vertex_executions=" in out
        assert "frontier_skip_ratio=" in out

    def test_monitor_prints_metrics_line(self, graph_file, capsys):
        assert main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5",
        ]) == 0
        assert "metrics:" in capsys.readouterr().out

    def test_run_trace_writes_valid_jsonl(self, graph_file, tmp_path,
                                          capsys):
        from repro.obs.sinks import read_trace, validate_events

        trace_file = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--trace", trace_file,
        ]) == 0
        events = read_trace(trace_file)
        assert validate_events(events) == []
        cats = {e["cat"] for e in events if e["type"] == "span"}
        assert {"run", "superstep", "compute"} <= cats
        assert "trace (jsonl) written" in capsys.readouterr().err

    def test_run_trace_chrome_format(self, graph_file, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "run.chrome.json")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file, "--trace-format", "chrome",
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            chrome = json.load(fh)
        assert chrome["traceEvents"]

    def test_run_trace_prom_format(self, graph_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.prom")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file, "--trace-format", "prom",
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            text = fh.read()
        assert "repro_engine_runs_total" in text
        assert 'repro_span_total{phase="run"}' in text

    def test_stats_summarizes_cli_trace(self, graph_file, tmp_path, capsys):
        trace_file = str(tmp_path / "cap.jsonl")
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir, "--trace", trace_file,
        ]) == 0
        capsys.readouterr()
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "provenance-capture" in out

    def test_query_verbose_prints_stratum_timings(self, graph_file,
                                                  tmp_path, capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "--store", store_dir, "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0", "-v",
        ]) == 0
        assert "observed stratum timings:" in capsys.readouterr().out


class TestExportAndExplainCommands:
    def test_export_roundtrip(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "prov2")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        out_file = str(tmp_path / "prov.jsonl")
        assert main(["export", "--store", store_dir, "--out", out_file]) == 0
        assert "exported" in capsys.readouterr().out
        from repro.provenance.export import import_path

        store = import_path(out_file)
        assert store.num_rows > 0

    def test_explain_named_query(self, capsys):
        assert main([
            "explain", "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=5",
        ]) == 0
        out = capsys.readouterr().out
        assert "direction: backward" in out

    def test_explain_verbose(self, capsys):
        assert main([
            "explain", "--query", "query4", "--verbose",
        ]) == 0
        assert "free plan" in capsys.readouterr().out


class TestParallelBackendFlags:
    def test_run_parallel_matches_serial_output(self, graph_file, capsys):
        assert main(["run", "--analytic", "sssp", "--graph", graph_file]) == 0
        serial = capsys.readouterr().out
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
        ]) == 0
        parallel = capsys.readouterr().out
        assert ("backend:     parallel (2 workers, hash partitioning, "
                "ring transport)") in parallel
        # everything except the backend/wall lines is byte-identical
        strip = lambda out: [l for l in out.splitlines()
                             if not l.startswith(("backend:", "wall:"))]
        assert strip(parallel) == strip(serial)

    def test_transport_flag(self, graph_file, capsys):
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
            "--transport", "queue",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue transport" in out

    def test_apt_parallel(self, graph_file, capsys):
        assert main([
            "apt", "--analytic", "sssp", "--graph", graph_file,
            "--eps", "0.1", "--backend", "parallel", "--num-workers", "2",
            "--partitioner", "range",
        ]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_backend_recorded_in_trace(self, graph_file, tmp_path, capsys):
        from repro.obs.sinks import read_trace, validate_events

        trace_file = str(tmp_path / "par.jsonl")
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
            "--trace", trace_file,
        ]) == 0
        events = read_trace(trace_file)
        assert validate_events(events) == []
        configs = [e for e in events if e.get("name") == "run-config"]
        assert configs and configs[0]["attrs"] == {
            "backend": "parallel", "num_workers": 2, "partitioner": "hash",
            "transport": "ring",
        }
        # worker-side compute spans were merged into the master trace
        workers = {e["attrs"]["worker"] for e in events
                   if e.get("type") == "span"
                   and "worker" in e.get("attrs", {})}
        assert workers == {0, 1}

    def test_rejects_unknown_backend(self, graph_file):
        with pytest.raises(SystemExit):
            main(["run", "--analytic", "sssp", "--graph", graph_file,
                  "--backend", "threads"])
