"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.graph.generators import chain_graph, web_graph, with_random_weights
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "graph.txt"
    g = with_random_weights(
        web_graph(80, avg_degree=4, target_diameter=6, seed=81), seed=81
    )
    write_edge_list(g, path, weighted=True)
    return str(path)


class TestCLI:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "IN-04" in out and "UK-05" in out

    def test_run(self, graph_file, capsys):
        code = main(["run", "--analytic", "sssp", "--graph", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "supersteps:" in out

    def test_monitor_named_query(self, graph_file, capsys):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "check_failed: 0 rows" in out

    def test_monitor_inline_query(self, graph_file, capsys):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "got(X, I) :- receive_message(X, Y, M, I).",
        ])
        assert code == 0
        assert "got:" in capsys.readouterr().out

    def test_apt(self, graph_file, capsys):
        code = main([
            "apt", "--analytic", "sssp", "--graph", graph_file,
            "--eps", "0.1",
        ])
        assert code == 0
        assert "verdict" in capsys.readouterr().out

    def test_capture_query_inspect_roundtrip(self, graph_file, tmp_path,
                                             capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        assert os.path.exists(os.path.join(store_dir, "static.slab"))
        capsys.readouterr()

        assert main([
            "query", "--store", store_dir, "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0",
            "--show", "back_lineage",
        ]) == 0
        out = capsys.readouterr().out
        assert "back_trace:" in out

        assert main(["inspect", "--store", store_dir]) == 0
        assert "provenance store" in capsys.readouterr().out

        assert main(["inspect", "--store", store_dir, "--vertex", "0"]) == 0
        assert "vertex 0" in capsys.readouterr().out

    def test_capture_sync_raw_spill(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "prov-raw")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir, "--spill-sync", "--spill-compression", "raw",
        ]) == 0
        out = capsys.readouterr().out
        assert "(raw, sync)" in out
        assert os.path.exists(os.path.join(store_dir, "static.slab"))

        assert main(["inspect", "--store", store_dir]) == 0
        assert "provenance store" in capsys.readouterr().out

    def test_capture_default_is_async_zlib(self, graph_file, tmp_path,
                                           capsys):
        store_dir = str(tmp_path / "prov-zlib")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        assert "(zlib, async)" in capsys.readouterr().out

    def test_missing_query_errors(self, graph_file, capsys):
        code = main(["monitor", "--analytic", "sssp", "--graph", graph_file])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_param_errors(self, graph_file):
        code = main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5", "--param", "oops",
        ])
        assert code == 2

    def test_unknown_analytic_errors(self, graph_file):
        code = main(["run", "--analytic", "nope", "--graph", graph_file])
        assert code == 2


class TestObservabilityFlags:
    def test_run_prints_metrics_line(self, graph_file, capsys):
        assert main(["run", "--analytic", "sssp", "--graph", graph_file]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "vertex_executions=" in out
        assert "frontier_skip_ratio=" in out

    def test_monitor_prints_metrics_line(self, graph_file, capsys):
        assert main([
            "monitor", "--analytic", "sssp", "--graph", graph_file,
            "--query", "query5",
        ]) == 0
        assert "metrics:" in capsys.readouterr().out

    def test_run_trace_writes_valid_jsonl(self, graph_file, tmp_path,
                                          capsys):
        from repro.obs.sinks import read_trace, validate_events

        trace_file = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--trace", trace_file,
        ]) == 0
        events = read_trace(trace_file)
        assert validate_events(events) == []
        cats = {e["cat"] for e in events if e["type"] == "span"}
        assert {"run", "superstep", "compute"} <= cats
        assert "trace (jsonl) written" in capsys.readouterr().err

    def test_run_trace_chrome_format(self, graph_file, tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "run.chrome.json")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file, "--trace-format", "chrome",
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            chrome = json.load(fh)
        assert chrome["traceEvents"]

    def test_run_trace_prom_format(self, graph_file, tmp_path, capsys):
        trace_file = str(tmp_path / "run.prom")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file, "--trace-format", "prom",
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            text = fh.read()
        assert "repro_engine_runs_total" in text
        assert 'repro_span_total{phase="run"}' in text

    def test_stats_summarizes_cli_trace(self, graph_file, tmp_path, capsys):
        trace_file = str(tmp_path / "cap.jsonl")
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir, "--trace", trace_file,
        ]) == 0
        capsys.readouterr()
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "provenance-capture" in out

    def test_query_verbose_prints_stratum_timings(self, graph_file,
                                                  tmp_path, capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        assert main([
            "query", "--store", store_dir, "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0", "-v",
        ]) == 0
        assert "observed stratum timings:" in capsys.readouterr().out


class TestExportAndExplainCommands:
    def test_export_roundtrip(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "prov2")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        out_file = str(tmp_path / "prov.jsonl")
        assert main(["export", "--store", store_dir, "--out", out_file]) == 0
        assert "exported" in capsys.readouterr().out
        from repro.provenance.export import import_path

        store = import_path(out_file)
        assert store.num_rows > 0

    def test_explain_named_query(self, capsys):
        assert main([
            "explain", "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=5",
        ]) == 0
        out = capsys.readouterr().out
        assert "direction: backward" in out

    def test_explain_verbose(self, capsys):
        assert main([
            "explain", "--query", "query4", "--verbose",
        ]) == 0
        assert "free plan" in capsys.readouterr().out


class TestParallelBackendFlags:
    def test_run_parallel_matches_serial_output(self, graph_file, capsys):
        assert main(["run", "--analytic", "sssp", "--graph", graph_file]) == 0
        serial = capsys.readouterr().out
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
        ]) == 0
        parallel = capsys.readouterr().out
        assert ("backend:     parallel (2 workers, hash partitioning, "
                "ring transport)") in parallel
        # everything except the backend/wall lines is byte-identical
        strip = lambda out: [l for l in out.splitlines()
                             if not l.startswith(("backend:", "wall:"))]
        assert strip(parallel) == strip(serial)

    def test_transport_flag(self, graph_file, capsys):
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
            "--transport", "queue",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue transport" in out

    def test_apt_parallel(self, graph_file, capsys):
        assert main([
            "apt", "--analytic", "sssp", "--graph", graph_file,
            "--eps", "0.1", "--backend", "parallel", "--num-workers", "2",
            "--partitioner", "range",
        ]) == 0
        assert "verdict" in capsys.readouterr().out

    def test_backend_recorded_in_trace(self, graph_file, tmp_path, capsys):
        from repro.obs.sinks import read_trace, validate_events

        trace_file = str(tmp_path / "par.jsonl")
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--backend", "parallel", "--num-workers", "2",
            "--trace", trace_file,
        ]) == 0
        events = read_trace(trace_file)
        assert validate_events(events) == []
        configs = [e for e in events if e.get("name") == "run-config"]
        assert configs and configs[0]["attrs"] == {
            "backend": "parallel", "num_workers": 2, "partitioner": "hash",
            "transport": "ring",
        }
        # worker-side compute spans were merged into the master trace
        workers = {e["attrs"]["worker"] for e in events
                   if e.get("type") == "span"
                   and "worker" in e.get("attrs", {})}
        assert workers == {0, 1}

    def test_rejects_unknown_backend(self, graph_file):
        with pytest.raises(SystemExit):
            main(["run", "--analytic", "sssp", "--graph", graph_file,
                  "--backend", "threads"])


class TestRunLedgerAndAudit:
    @pytest.fixture()
    def audited_store(self, graph_file, tmp_path, capsys):
        """A captured store plus one query against it, both ledgered (the
        store directory is the default ledger for both commands)."""
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        assert main([
            "query", "--store", store_dir, "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0",
        ]) == 0
        capsys.readouterr()
        return store_dir

    def test_capture_and_query_records_are_linked(self, audited_store):
        from repro.obs.ledger import RunLedger

        records = RunLedger(audited_store).records()
        assert [r["command"] for r in records] == ["capture", "query"]
        capture, query = records
        assert query["parent_run_id"] == capture["run_id"]
        assert capture["run_id"].startswith("r")
        store = capture["results"]["store"]
        assert "static.slab" in store["slabs"]
        assert capture["config"]["backend"] == "serial"
        assert capture["dataset"]["edges_sha256"]
        assert query["results"]["mode"] == "layered"
        assert query["query"]["sha256"]

    def test_manifest_names_the_capture_run(self, audited_store):
        from repro.obs.ledger import RunLedger
        from repro.provenance.spill import read_manifest

        manifest = read_manifest(audited_store)
        capture = RunLedger(audited_store).latest("capture")
        assert manifest["run_id"] == capture["run_id"]
        assert set(manifest["slabs"]) == set(
            capture["results"]["store"]["slabs"]
        )

    def test_explicit_ledger_flag_overrides_default(self, graph_file,
                                                    tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        store_dir = str(tmp_path / "prov")
        ledger_dir = str(tmp_path / "ledger")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir, "--ledger", ledger_dir,
        ]) == 0
        assert RunLedger(ledger_dir).latest("capture") is not None
        assert not os.path.exists(os.path.join(store_dir, "ledger.jsonl"))

    def test_run_records_with_ledger_flag_only(self, graph_file, tmp_path,
                                               capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = str(tmp_path / "ledger")
        assert main([
            "run", "--analytic", "sssp", "--graph", graph_file,
            "--ledger", ledger_dir,
        ]) == 0
        record = RunLedger(ledger_dir).latest("run")
        assert record["results"]["values_sha256"]
        assert record["metrics"]["supersteps"] >= 1

    def test_audit_list_and_show(self, audited_store, capsys):
        assert main(["audit", "list", "--store", audited_store]) == 0
        out = capsys.readouterr().out
        assert "capture" in out and "query" in out and "run id" in out

        assert main([
            "audit", "show", "latest:capture", "--store", audited_store,
        ]) == 0
        import json

        record = json.loads(capsys.readouterr().out)
        assert record["command"] == "capture"

    def test_audit_verify_fresh_store_passes(self, audited_store, capsys):
        assert main(["audit", "verify", "--store", audited_store]) == 0
        assert "audit verify OK" in capsys.readouterr().out

    def test_audit_verify_detects_tampering(self, audited_store, capsys):
        slab = os.path.join(audited_store, "layer-000000.slab")
        with open(slab, "r+b") as fh:
            fh.seek(16)
            fh.write(b"\x00\x01\x02")
        assert main(["audit", "verify", "--store", audited_store]) == 1
        err = capsys.readouterr().err
        assert "audit verify FAILED" in err
        assert "drift" in err

    def test_audit_diff_and_compare(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger, make_record

        ledger_dir = str(tmp_path / "ledger")
        ledger = RunLedger(ledger_dir)
        a = ledger.append(make_record(
            "run", analytic="sssp", wall_seconds=1.0,
            metrics={"supersteps": 5, "messages": 100},
            results={"values_sha256": "d1"},
        ))
        b = ledger.append(make_record(
            "run", analytic="sssp", wall_seconds=1.5,
            metrics={"supersteps": 5, "messages": 140},
            results={"values_sha256": "d1"},
        ))
        assert main([
            "audit", "diff", a["run_id"], b["run_id"],
            "--ledger", ledger_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics.messages" in out and "field(s) differ" in out

        # 50% slower than a's wall at a 10% threshold: regression, rc 1
        assert main([
            "compare", a["run_id"], b["run_id"], "--ledger", ledger_dir,
        ]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        # generous threshold: same comparison passes
        assert main([
            "compare", a["run_id"], b["run_id"], "--ledger", ledger_dir,
            "--threshold", "0.6",
        ]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_audit_without_ledger_errors(self, tmp_path, capsys):
        assert main(["audit", "list"]) == 2
        assert "no ledger to read" in capsys.readouterr().err


class TestOTelTraceFormat:
    def test_run_trace_otel_format(self, graph_file, tmp_path, capsys):
        import json

        from repro.obs.otel import validate_otlp

        trace_file = str(tmp_path / "run.otel.json")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file, "--trace-format", "otel",
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            otlp = json.load(fh)
        assert validate_otlp(otlp) == []
        resource = {
            kv["key"]: kv["value"]
            for kv in otlp["resourceSpans"][0]["resource"]["attributes"]
        }
        # the exported trace names the run that produced it
        assert resource["repro.run_id"]["stringValue"].startswith("r")

    def test_stats_converts_and_validates_otel(self, graph_file, tmp_path,
                                               capsys):
        trace_file = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file,
        ]) == 0
        capsys.readouterr()
        assert main([
            "stats", trace_file, "--format", "otel", "--validate",
        ]) == 0
        assert "otel trace OK" in capsys.readouterr().out

        out_file = str(tmp_path / "out.otel.json")
        assert main([
            "stats", trace_file, "--format", "otel", "--out", out_file,
        ]) == 0
        import json

        from repro.obs.otel import validate_otlp

        with open(out_file, "r", encoding="utf-8") as fh:
            assert validate_otlp(json.load(fh)) == []

    def test_jsonl_meta_carries_schema_v2_run_id(self, graph_file,
                                                 tmp_path, capsys):
        import json

        trace_file = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "3",
            "--trace", trace_file,
        ]) == 0
        with open(trace_file, "r", encoding="utf-8") as fh:
            meta = json.loads(fh.readline())
        assert meta["type"] == "meta"
        assert meta["schema"] == 2
        assert meta["run_id"].startswith("r")

    def test_unknown_schema_version_is_rejected(self, tmp_path, capsys):
        import json

        from repro.obs.sinks import meta_event, read_trace, validate_events

        bad = meta_event()
        bad["schema"] = 99
        trace_file = str(tmp_path / "bad.jsonl")
        with open(trace_file, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(bad) + "\n")
        problems = validate_events(read_trace(trace_file))
        assert any("unsupported schema version 99" in p for p in problems)
        assert any("this build reads 1, 2" in p for p in problems)


class TestVerboseLogging:
    def test_inspect_verbose_logs_store_details(self, graph_file, tmp_path,
                                                capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", "--store", store_dir, "-v"]) == 0
        out = capsys.readouterr().out
        assert "inspect: opening sealed store" in out

        assert main([
            "export", "--store", store_dir,
            "--out", str(tmp_path / "prov.ttl"), "-v",
        ]) == 0
        assert "export: opening sealed store" in capsys.readouterr().out

    def test_explain_and_stats_verbose_logs(self, graph_file, tmp_path,
                                            capsys):
        assert main([
            "explain", "--query", "query10",
            "--param", "alpha=0", "--param", "sigma=0", "-v",
        ]) == 0
        assert "explain: compiling" in capsys.readouterr().out

        trace_file = str(tmp_path / "run.jsonl")
        assert main([
            "run", "--graph", graph_file, "--supersteps", "2",
            "--trace", trace_file,
        ]) == 0
        capsys.readouterr()
        assert main(["stats", trace_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "stats: reading trace" in out

    def test_quiet_suppresses_info_logs(self, graph_file, tmp_path, capsys):
        store_dir = str(tmp_path / "prov")
        assert main([
            "capture", "--analytic", "sssp", "--graph", graph_file,
            "--out", store_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", "--store", store_dir, "--quiet"]) == 0
        assert "inspect: opening" not in capsys.readouterr().out
