"""The simulated worker count must never affect results — partitioning
changes message routing (and the cross-worker metric), nothing else."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine
from repro.graph.generators import web_graph, with_random_weights
from repro.graph.partition import RangePartitioner


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(200, avg_degree=6, target_diameter=10, seed=141), seed=141
    )


@pytest.mark.parametrize("workers", [1, 2, 7])
class TestWorkerCountInvariance:
    def test_sssp(self, wgraph, workers):
        one = PregelEngine(
            wgraph, config=EngineConfig(num_workers=1)
        ).run(SSSP(source=0).make_program())
        many = PregelEngine(
            wgraph, config=EngineConfig(num_workers=workers)
        ).run(SSSP(source=0).make_program())
        assert one.values == many.values
        assert one.num_supersteps == many.num_supersteps

    def test_pagerank_bitwise(self, wgraph, workers):
        one = PregelEngine(
            wgraph, config=EngineConfig(num_workers=1)
        ).run(PageRank(num_supersteps=10).make_program())
        many = PregelEngine(
            wgraph, config=EngineConfig(num_workers=workers)
        ).run(PageRank(num_supersteps=10).make_program())
        # message delivery order is identical, so floats match bitwise
        assert one.values == many.values

    def test_wcc(self, wgraph, workers):
        one = PregelEngine(
            wgraph, config=EngineConfig(num_workers=1)
        ).run(WCC().make_program())
        many = PregelEngine(
            wgraph, config=EngineConfig(num_workers=workers)
        ).run(WCC().make_program())
        assert one.values == many.values


class TestPartitionerChoice:
    def test_range_partitioner_same_results(self, wgraph):
        hash_run = PregelEngine(wgraph).run(SSSP(source=0).make_program())
        range_run = PregelEngine(
            wgraph,
            partitioner=RangePartitioner(4, wgraph.num_vertices),
        ).run(SSSP(source=0).make_program())
        assert hash_run.values == range_run.values

    def test_cross_worker_traffic_varies_with_workers(self, wgraph):
        single = PregelEngine(
            wgraph, config=EngineConfig(num_workers=1)
        ).run(SSSP(source=0).make_program())
        multi = PregelEngine(
            wgraph, config=EngineConfig(num_workers=4)
        ).run(SSSP(source=0).make_program())
        assert single.metrics.total_cross_worker_messages == 0
        assert multi.metrics.total_cross_worker_messages > 0
        assert single.metrics.total_messages == multi.metrics.total_messages
