"""Unit tests for vertex-program plumbing: combiners, FunctionProgram,
context surface."""

import pytest

from repro.engine.engine import run_program
from repro.engine.vertex import (
    FunctionProgram,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.errors import EngineError
from repro.graph.digraph import from_edge_list
from repro.graph.generators import chain_graph


class TestCombiners:
    def test_min(self):
        assert MinCombiner().combine(2, 5) == 2
        assert MinCombiner().combine(5, 2) == 2

    def test_max(self):
        assert MaxCombiner().combine(2, 5) == 5

    def test_sum(self):
        assert SumCombiner().combine(2, 5) == 7


class TestFunctionProgram:
    def test_requires_callable(self):
        with pytest.raises(EngineError):
            FunctionProgram("not callable")

    def test_static_initial_value(self):
        prog = FunctionProgram(lambda ctx, m: ctx.vote_to_halt(), initial=7)
        result = run_program(chain_graph(2), prog)
        assert all(v == 7 for v in result.values.values())

    def test_callable_initial_value(self):
        prog = FunctionProgram(
            lambda ctx, m: ctx.vote_to_halt(),
            initial=lambda vid, g: vid * 10,
        )
        result = run_program(chain_graph(3), prog)
        assert result.values == {0: 0, 1: 10, 2: 20}


class TestContextSurface:
    def test_topology_accessors(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 0)])
        seen = {}

        def fn(ctx, msgs):
            if ctx.vertex_id == 0:
                seen["out"] = sorted(ctx.out_neighbors())
                seen["in"] = sorted(ctx.in_neighbors())
                seen["deg"] = ctx.out_degree()
                seen["n"] = ctx.num_vertices
            ctx.vote_to_halt()

        run_program(g, FunctionProgram(fn))
        assert seen == {"out": [1, 2], "in": [1], "deg": 2, "n": 3}

    def test_value_not_written_unless_set(self):
        prog = FunctionProgram(lambda ctx, m: ctx.vote_to_halt(), initial=5)
        result = run_program(chain_graph(2), prog)
        assert result.values == {0: 5, 1: 5}
