"""Frontier-scheduled runs must be indistinguishable from full scans.

The frontier scheduler visits only awake-or-messaged vertices in canonical
vertex order; a full scan visits every vertex and skips the idle ones. The
two must agree on *everything* an engine run produces — values, aggregators,
halt reason, superstep count, message counters — and, for provenance-aware
runs, on the captured store contents, across seeded-random graphs and all
the paper's analytics (property-style: many seeds, one invariant).
"""

import random

import pytest

from repro.analytics.kcore import KCore
from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.core import queries as Q
from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine, run_program
from repro.engine.vertex import FunctionProgram, VertexProgram
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    random_graph,
    web_graph,
    with_random_weights,
)
from repro.runtime.online import run_online


def random_weighted_graph(seed: int) -> DiGraph:
    """Seeded random graph with isolated vertices and random weights."""
    rng = random.Random(seed)
    n = rng.randint(8, 60)
    g = random_graph(n, num_edges=rng.randint(n, 4 * n), seed=seed)
    # a few extra isolated vertices exercise the never-messaged path
    for v in range(n, n + rng.randint(0, 4)):
        g.add_vertex(v)
    return with_random_weights(g, seed=seed)


def assert_equivalent(graph: DiGraph, make_program, num_workers: int = 4):
    """Run frontier vs full scan and compare every observable output."""
    scan = PregelEngine(
        graph,
        config=EngineConfig(
            num_workers=num_workers, frontier_scheduling=False
        ),
    ).run(make_program())
    frontier = PregelEngine(
        graph,
        config=EngineConfig(
            num_workers=num_workers, frontier_scheduling=True
        ),
    ).run(make_program())
    assert frontier.values == scan.values
    assert frontier.aggregators == scan.aggregators
    assert frontier.halt_reason == scan.halt_reason
    assert frontier.edge_values == scan.edge_values
    assert frontier.num_supersteps == scan.num_supersteps
    fm, sm = frontier.metrics, scan.metrics
    assert fm.total_messages == sm.total_messages
    assert fm.total_active_vertices == sm.total_active_vertices
    assert fm.total_cross_worker_messages == sm.total_cross_worker_messages
    # the frontier scheduler executes exactly the vertices the scan did
    for f_step, s_step in zip(fm.supersteps, sm.supersteps):
        assert f_step.active_vertices == s_step.active_vertices
        assert f_step.frontier_size == s_step.frontier_size
    return frontier, scan


ANALYTICS = {
    "pagerank": lambda: PageRank(num_supersteps=12).make_program(),
    "sssp": lambda: SSSP(source=0).make_program(),
    "wcc": lambda: WCC().make_program(),
    "kcore": lambda: KCore().make_program(),
}


@pytest.mark.parametrize("analytic", sorted(ANALYTICS))
@pytest.mark.parametrize("seed", [1, 7, 42])
class TestAnalyticEquivalence:
    def test_random_graphs(self, analytic, seed):
        assert_equivalent(random_weighted_graph(seed), ANALYTICS[analytic])

    def test_web_graphs(self, analytic, seed):
        g = with_random_weights(
            web_graph(120, avg_degree=5, target_diameter=8, seed=seed),
            seed=seed,
        )
        assert_equivalent(g, ANALYTICS[analytic])


class TestSchedulerSemantics:
    def test_frontier_shrinks_on_sssp_tail(self):
        """SSSP's long tail must actually skip vertices (the perf claim)."""
        g = with_random_weights(
            web_graph(300, avg_degree=4, target_diameter=12, seed=3), seed=3
        )
        result = run_program(g, SSSP(source=0).make_program())
        assert result.metrics.total_skipped_vertices > 0
        assert any(
            s.frontier_size < g.num_vertices
            for s in result.metrics.supersteps
        )

    def test_wakeup_across_many_idle_supersteps(self):
        """A halted vertex skipped for many supersteps wakes correctly."""
        computes = []

        def fn(ctx, msgs):
            computes.append((ctx.vertex_id, ctx.superstep))
            if ctx.vertex_id == 0 and ctx.superstep < 5:
                ctx.send(0, "again")
                if ctx.superstep == 4:
                    ctx.send(1, "wake")
            ctx.vote_to_halt()

        g = DiGraph()
        g.add_edge(0, 1)
        run_program(g, FunctionProgram(fn))
        assert (1, 5) in computes
        assert not any(v == 1 and 0 < s < 5 for v, s in computes)

    def test_mutating_messages_does_not_corrupt_siblings(self):
        """The shared no-messages sentinel must be immune to mutation."""

        class Mutator(VertexProgram):
            def compute(self, ctx, messages):
                if isinstance(messages, list):
                    messages.append("junk")  # hostile program
                ctx.set_value(list(messages))
                ctx.vote_to_halt()

        g = DiGraph()
        for v in range(4):
            g.add_vertex(v)
        result = run_program(g, Mutator())
        # a mutable shared sentinel would leak "junk" into later vertices
        assert all(value == [] for value in result.values.values())

    def test_empty_graph(self):
        result = run_program(DiGraph(), FunctionProgram(lambda c, m: None))
        assert result.halt_reason == "no_active_vertices"
        assert result.values == {}


class TestCaptureEquivalence:
    """Provenance capture must be identical under both schedulers."""

    @staticmethod
    def store_contents(store):
        return {
            relation: {
                vertex: frozenset(store.partition(relation, vertex))
                for vertex in store.vertices(relation)
            }
            for relation in store.relations()
        }

    @pytest.mark.parametrize(
        "make_analytic",
        [
            lambda: PageRank(num_supersteps=8),
            lambda: SSSP(source=0),
            lambda: WCC(),
        ],
        ids=["pagerank", "sssp", "wcc"],
    )
    def test_full_capture_stores_match(self, make_analytic):
        g = with_random_weights(
            web_graph(80, avg_degree=4, target_diameter=6, seed=11), seed=11
        )
        runs = {}
        for frontier in (False, True):
            runs[frontier] = run_online(
                g,
                make_analytic(),
                Q.CAPTURE_FULL_QUERY,
                capture=True,
                config=EngineConfig(frontier_scheduling=frontier),
            )
        scan, frontier = runs[False], runs[True]
        assert self.store_contents(frontier.store) == self.store_contents(
            scan.store
        )
        assert frontier.store.num_rows == scan.store.num_rows
        assert frontier.store.max_superstep == scan.store.max_superstep
        assert frontier.analytic.values == scan.analytic.values
        assert frontier.query.derivations == scan.query.derivations

    def test_custom_capture_stores_match(self):
        g = with_random_weights(
            web_graph(80, avg_degree=4, target_diameter=6, seed=13), seed=13
        )
        runs = {}
        for frontier in (False, True):
            runs[frontier] = run_online(
                g,
                SSSP(source=0),
                Q.CAPTURE_FWD_LINEAGE_QUERY,
                params={"source": 0},
                capture=True,
                config=EngineConfig(frontier_scheduling=frontier),
            )
        assert self.store_contents(runs[True].store) == self.store_contents(
            runs[False].store
        )
