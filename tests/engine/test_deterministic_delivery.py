"""Deterministic delivery with the precomputed envelope sort key.

The seed engine sorted each inbox with ``key=repr``; the engine now keys on
``(sender id, payload)`` carried by :class:`Envelope` (precomputed, cached)
with a cheap scalar key for plain payloads. These tests prove the switch
changes no results: analytics are delivery-order insensitive (same values
with and without sorting), sorted order is deterministic and worker-count
independent, and provenance capture is unaffected.
"""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine
from repro.engine.ordering import delivery_key, ordering_key
from repro.graph.generators import web_graph, with_random_weights
from repro.runtime.envelope import Envelope
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(150, avg_degree=5, target_diameter=8, seed=17), seed=17
    )


def run_with(graph, make_program, **config_kwargs):
    config = EngineConfig(use_combiner=False, **config_kwargs)
    return PregelEngine(graph, config=config).run(make_program())


class TestResultsUnchanged:
    def test_sssp_sorted_vs_unsorted_delivery(self, wgraph):
        make_program = lambda: SSSP(source=0).make_program()
        plain = run_with(wgraph, make_program)
        sorted_run = run_with(
            wgraph, make_program, deterministic_delivery=True
        )
        # min() is order-insensitive: distances match bitwise
        assert sorted_run.values == plain.values
        assert sorted_run.num_supersteps == plain.num_supersteps
        assert (
            sorted_run.metrics.total_messages == plain.metrics.total_messages
        )

    def test_pagerank_sorted_vs_unsorted_delivery(self, wgraph):
        make_program = lambda: PageRank(num_supersteps=10).make_program()
        plain = run_with(wgraph, make_program)
        sorted_run = run_with(
            wgraph, make_program, deterministic_delivery=True
        )
        # sorting reorders the float sums, so ranks agree to rounding only
        # (exactly as with the seed's repr-keyed sort)
        for v, rank in plain.values.items():
            assert sorted_run.values[v] == pytest.approx(rank, rel=1e-12)
        assert sorted_run.num_supersteps == plain.num_supersteps
        assert (
            sorted_run.metrics.total_messages == plain.metrics.total_messages
        )

    @pytest.mark.parametrize("workers", [1, 3, 7])
    def test_sorted_delivery_worker_invariant(self, wgraph, workers):
        one = run_with(
            wgraph,
            lambda: PageRank(num_supersteps=10).make_program(),
            deterministic_delivery=True,
            num_workers=1,
        )
        many = run_with(
            wgraph,
            lambda: PageRank(num_supersteps=10).make_program(),
            deterministic_delivery=True,
            num_workers=workers,
        )
        assert one.values == many.values

    @pytest.mark.parametrize("deterministic", [False, True])
    def test_capture_unaffected(self, wgraph, deterministic):
        """Envelope-carrying capture runs agree regardless of sorting."""
        reference = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
        )
        run = run_online(
            wgraph,
            SSSP(source=0),
            Q.CAPTURE_FULL_QUERY,
            capture=True,
            config=EngineConfig(deterministic_delivery=deterministic),
        )
        assert run.analytic.values == reference.analytic.values
        assert run.store.num_rows == reference.store.num_rows
        for relation in reference.store.relations():
            assert set(run.store.rows(relation)) == set(
                reference.store.rows(relation)
            )


class TestSortKey:
    def test_envelopes_sort_by_sender_then_payload(self):
        inbox = [
            Envelope(5, 0.1),
            Envelope(2, 9.0),
            Envelope(2, 1.0),
            Envelope(11, -3.0),
        ]
        inbox.sort(key=delivery_key)
        assert [(e.sender, e.payload) for e in inbox] == [
            (2, 1.0), (2, 9.0), (5, 0.1), (11, -3.0),
        ]

    def test_key_is_cached(self):
        env = Envelope("a", (1, 2))
        first = env.sort_key
        assert env.sort_key is first

    def test_plain_payload_keys(self):
        msgs = [3.5, 1, 2.25, 0]
        msgs.sort(key=delivery_key)
        assert msgs == [0, 1, 2.25, 3.5]

    def test_mixed_types_are_orderable(self):
        # never raises, orders by type group first
        msgs = ["b", 2, ("t",), "a", 1.5, Envelope(1, "x")]
        msgs.sort(key=delivery_key)
        nums = [m for m in msgs if isinstance(m, (int, float))]
        assert nums == [1.5, 2]

    def test_key_stability_is_deterministic(self):
        keys = [ordering_key(v) for v in (True, 3, "3", 3.0, (3,), None)]
        assert keys == [ordering_key(v) for v in (True, 3, "3", 3.0, (3,), None)]
        # numbers share a tag and order numerically
        assert ordering_key(2) < ordering_key(10)
        assert ordering_key("10") < ordering_key("2")
