"""Disabled-tracing fast path and engine tracing integration.

The instrumentation contract: with the NULL_TRACER installed (the
default), an instrumented run emits nothing and produces results
identical to a traced run — the only observable difference tracing makes
is the trace itself.
"""

import pytest

from repro.analytics.sssp import SSSP
from repro.engine.engine import run_program
from repro.engine.vertex import FunctionProgram
from repro.graph.generators import chain_graph, with_random_weights, web_graph
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.sinks import InMemorySink
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    PHASE_COMPUTE,
    PHASE_RUN,
    PHASE_SUPERSTEP,
    Tracer,
    get_tracer,
    tracing,
)


@pytest.fixture
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _sssp_run():
    graph = with_random_weights(
        web_graph(60, avg_degree=4, target_diameter=6, seed=11), seed=11
    )
    return run_program(graph, SSSP(source=0).make_program())


class TestNoopFastPath:
    def test_disabled_run_matches_traced_run(self, fresh_registry):
        assert get_tracer() is NULL_TRACER  # instrumented but disabled
        untraced = _sssp_run()

        sink = InMemorySink()
        with tracing(Tracer(sink)):
            traced = _sssp_run()

        assert untraced.values == traced.values
        assert untraced.halt_reason == traced.halt_reason
        assert (untraced.metrics.summary()["messages"]
                == traced.metrics.summary()["messages"])
        assert (untraced.metrics.total_active_vertices
                == traced.metrics.total_active_vertices)

    def test_disabled_run_emits_nothing(self, fresh_registry):
        sink = InMemorySink()
        # a sink exists but the installed tracer is the null one
        _sssp_run()
        assert sink.events == []
        assert get_tracer().span("anything") is NULL_SPAN

    def test_disabled_run_still_publishes_run_metrics(self, fresh_registry):
        _sssp_run()
        snap = fresh_registry.snapshot()
        assert snap["repro_engine_runs_total"] == 1
        assert snap["repro_engine_messages_total"] > 0
        assert snap["repro_engine_superstep_seconds"]["count"] > 0


class TestEngineTracing:
    def test_span_hierarchy(self, fresh_registry):
        sink = InMemorySink()
        with tracing(Tracer(sink)):
            result = _sssp_run()

        spans = [e for e in sink.events if e["type"] == "span"]
        runs = [s for s in spans if s["cat"] == PHASE_RUN]
        steps = [s for s in spans if s["cat"] == PHASE_SUPERSTEP]
        computes = [s for s in spans if s["cat"] == PHASE_COMPUTE]

        assert len(runs) == 1
        assert len(steps) == result.num_supersteps == len(computes)
        run = runs[0]
        assert run["attrs"]["halt_reason"] == result.halt_reason
        assert all(s["parent"] == run["id"] for s in steps)
        step_ids = {s["id"] for s in steps}
        assert all(c["parent"] in step_ids for c in computes)
        # compute spans carry the per-superstep counters
        assert sum(c["attrs"]["messages_sent"] for c in computes) == (
            result.metrics.total_messages
        )

    def test_phase_durations_nest_within_parents(self, fresh_registry):
        sink = InMemorySink()
        with tracing(Tracer(sink)):
            pass_result = _sssp_run()
        assert pass_result.num_supersteps > 1

        spans = [e for e in sink.events if e["type"] == "span"]
        by_id = {s["id"]: s for s in spans}
        for span in spans:
            if span["parent"] is not None:
                parent = by_id[span["parent"]]
                assert span["ts"] >= parent["ts"]
                # +2us: ts and dur are independently floored to microseconds
                assert span["ts"] + span["dur"] <= (
                    parent["ts"] + parent["dur"] + 2
                )

    def test_superstep_spans_cover_run_wall(self, fresh_registry):
        sink = InMemorySink()
        with tracing(Tracer(sink)):
            _sssp_run()
        spans = [e for e in sink.events if e["type"] == "span"]
        run = next(s for s in spans if s["cat"] == PHASE_RUN)
        step_total = sum(
            s["dur"] for s in spans if s["cat"] == PHASE_SUPERSTEP
        )
        assert step_total <= run["dur"]
        # the loop body outside the superstep spans is a few statements;
        # the spans must account for the bulk of the run wall time
        assert step_total >= 0.5 * run["dur"]

    def test_traced_run_mirrors_into_registry(self, fresh_registry):
        with tracing(Tracer(InMemorySink(), registry=fresh_registry)):
            result = _sssp_run()
        snap = fresh_registry.snapshot()
        assert snap['repro_span_total{phase="run"}'] == 1
        assert (snap['repro_span_total{phase="superstep"}']
                == result.num_supersteps)

    def test_halt_emits_no_leaked_spans(self, fresh_registry):
        # max_supersteps halt exits the loop via break: every span opened
        # must still have been closed (close() would end leftovers and
        # change the count)
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracing(tracer):
            run_program(
                chain_graph(6),
                FunctionProgram(lambda ctx, m: ctx.send_to_all(1)),
                max_supersteps=3,
            )
        before = len(sink.events)
        tracer.close()
        assert len(sink.events) == before
