"""Unit tests for engine run metrics."""

from repro.engine.engine import run_program
from repro.engine.metrics import RunMetrics, SuperstepMetrics
from repro.engine.vertex import FunctionProgram
from repro.graph.generators import chain_graph


class TestSuperstepMetrics:
    def test_defaults(self):
        step = SuperstepMetrics(3)
        assert step.superstep == 3
        assert step.messages_sent == 0
        assert step.wall_seconds == 0.0


class TestRunMetrics:
    def test_totals(self):
        metrics = RunMetrics()
        for i, (active, msgs) in enumerate([(5, 10), (3, 4)]):
            step = SuperstepMetrics(i)
            step.active_vertices = active
            step.messages_sent = msgs
            step.message_bytes = msgs * 8
            step.cross_worker_messages = msgs // 2
            metrics.supersteps.append(step)
        assert metrics.num_supersteps == 2
        assert metrics.total_messages == 14
        assert metrics.total_active_vertices == 8
        assert metrics.total_message_bytes == 112
        assert metrics.total_cross_worker_messages == 7

    def test_summary_keys(self):
        metrics = RunMetrics()
        summary = metrics.summary()
        assert set(summary) == {
            "supersteps", "wall_seconds", "vertex_executions", "messages",
            "message_bytes", "cross_worker_messages", "network_bytes",
            "frontier_vertices", "skipped_vertices",
            "messages_combined", "messages_precombined", "combine_ratio",
        }

    def test_network_bytes_none_unless_measured(self):
        metrics = RunMetrics()
        step = SuperstepMetrics(0)
        metrics.supersteps.append(step)
        assert metrics.summary()["network_bytes"] is None
        metrics.measured_network_bytes = True
        assert metrics.summary()["network_bytes"] == 0

    def test_combine_ratio(self):
        metrics = RunMetrics()
        step = SuperstepMetrics(0)
        step.messages_sent = 10
        step.messages_combined = 3
        step.messages_precombined = 2
        metrics.supersteps.append(step)
        assert metrics.total_messages_combined == 3
        assert metrics.total_messages_precombined == 2
        assert metrics.combine_ratio == 0.5
        empty = RunMetrics()
        assert empty.combine_ratio == 0.0

    def test_summary_message_bytes_none_when_untracked(self):
        # when byte estimation is off the per-step counters read 0 because
        # nothing was measured; the summary must not report that as "0 bytes"
        metrics = RunMetrics(track_message_bytes=False)
        step = SuperstepMetrics(0)
        step.messages_sent = 5
        metrics.supersteps.append(step)
        assert metrics.summary()["message_bytes"] is None

    def test_summary_message_bytes_reported_when_tracked(self):
        metrics = RunMetrics()
        step = SuperstepMetrics(0)
        step.message_bytes = 64
        metrics.supersteps.append(step)
        assert metrics.summary()["message_bytes"] == 64

    def test_frontier_skip_ratio(self):
        metrics = RunMetrics()
        assert metrics.frontier_skip_ratio == 0.0  # no supersteps yet
        for i, (frontier, skipped) in enumerate([(10, 0), (5, 15)]):
            step = SuperstepMetrics(i)
            step.frontier_size = frontier
            step.skipped_vertices = skipped
            metrics.supersteps.append(step)
        assert metrics.frontier_skip_ratio == 0.5  # 15 of 30 slots skipped

    def test_frontier_totals(self):
        metrics = RunMetrics()
        for i, (frontier, skipped) in enumerate([(10, 0), (2, 8)]):
            step = SuperstepMetrics(i)
            step.frontier_size = frontier
            step.skipped_vertices = skipped
            metrics.supersteps.append(step)
        assert metrics.total_frontier_size == 12
        assert metrics.total_skipped_vertices == 8
        assert metrics.max_frontier_size == 10


class TestEngineCounting:
    def test_active_vertices_per_superstep(self):
        def fn(ctx, msgs):
            if ctx.superstep == 0 and ctx.vertex_id == 0:
                ctx.send_to_all("x")
            ctx.vote_to_halt()

        result = run_program(chain_graph(4), FunctionProgram(fn))
        steps = result.metrics.supersteps
        assert steps[0].active_vertices == 4  # everyone at superstep 0
        assert steps[1].active_vertices == 1  # only vertex 1 got a message
        # scheduler counters mirror the executed/idle split
        assert steps[0].frontier_size == 4 and steps[0].skipped_vertices == 0
        assert steps[1].frontier_size == 1 and steps[1].skipped_vertices == 3

    def test_summary_reflects_byte_tracking_config(self):
        from repro.engine.config import EngineConfig

        def chatty(ctx, msgs):
            ctx.send_to_all("x")

        off = run_program(
            chain_graph(3), FunctionProgram(chatty),
            config=EngineConfig(track_message_bytes=False), max_supersteps=2,
        )
        assert off.metrics.summary()["message_bytes"] is None

        on = run_program(
            chain_graph(3), FunctionProgram(chatty),
            config=EngineConfig(track_message_bytes=True), max_supersteps=2,
        )
        assert on.metrics.summary()["message_bytes"] > 0

    def test_wall_seconds_accumulate(self):
        result = run_program(
            chain_graph(3),
            FunctionProgram(lambda ctx, m: ctx.vote_to_halt()),
        )
        assert result.metrics.wall_seconds >= sum(
            s.wall_seconds for s in result.metrics.supersteps
        ) > 0.0
