"""Unit tests for the BSP engine: superstep semantics, halting, messaging."""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine, run_program
from repro.engine.vertex import FunctionProgram, MinCombiner, VertexProgram
from repro.errors import EngineError, VertexProgramError
from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import chain_graph


class Broadcast(VertexProgram):
    """Sends its value downstream for a fixed number of supersteps."""

    def __init__(self, rounds: int):
        self.rounds = rounds

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        if messages:
            ctx.set_value(min(min(messages), ctx.value))
        if ctx.superstep < self.rounds:
            ctx.send_to_all(ctx.value)
        ctx.vote_to_halt()


class TestSuperstepSemantics:
    def test_all_vertices_compute_at_superstep_zero(self):
        seen = []
        prog = FunctionProgram(
            lambda ctx, msgs: (seen.append(ctx.vertex_id), ctx.vote_to_halt())
        )
        run_program(chain_graph(4), prog)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_messages_delivered_next_superstep(self):
        deliveries = {}

        def fn(ctx, msgs):
            if msgs:
                deliveries[ctx.vertex_id] = (ctx.superstep, list(msgs))
            if ctx.superstep == 0:
                ctx.send_to_all("hi")
            ctx.vote_to_halt()

        run_program(chain_graph(3), FunctionProgram(fn))
        assert deliveries == {1: (1, ["hi"]), 2: (1, ["hi"])}

    def test_halted_vertex_wakes_on_message(self):
        computes = []

        def fn(ctx, msgs):
            computes.append((ctx.vertex_id, ctx.superstep))
            if ctx.vertex_id == 0 and ctx.superstep == 2:
                ctx.send(1, "wake")
            if ctx.vertex_id != 0 or ctx.superstep >= 3:
                ctx.vote_to_halt()

        run_program(chain_graph(2), FunctionProgram(fn))
        # vertex 1 halts after superstep 0, then wakes at superstep 3
        assert (1, 3) in computes
        assert (1, 1) not in computes and (1, 2) not in computes

    def test_terminates_when_everyone_halts(self):
        result = run_program(
            chain_graph(3),
            FunctionProgram(lambda ctx, msgs: ctx.vote_to_halt()),
        )
        assert result.num_supersteps == 1
        assert result.halt_reason in ("converged", "no_active_vertices")

    def test_max_supersteps_cap(self):
        prog = FunctionProgram(lambda ctx, msgs: ctx.send_to_all(1))
        result = run_program(chain_graph(3), prog, max_supersteps=5)
        assert result.num_supersteps == 5
        assert result.halt_reason == "max_supersteps"

    def test_value_propagation(self):
        result = run_program(chain_graph(5), Broadcast(rounds=6))
        # min value (0) flows down the chain
        assert all(v == 0 for v in result.values.values())


class TestMessaging:
    def test_send_to_unknown_vertex_raises(self):
        prog = FunctionProgram(lambda ctx, msgs: ctx.send(999, "x"))
        with pytest.raises(VertexProgramError):
            run_program(chain_graph(2), prog)

    def test_combiner_reduces_messages(self):
        class TwoSends(VertexProgram):
            def combiner(self):
                return MinCombiner()

            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id in (0, 1):
                    ctx.send(2, ctx.vertex_id + 10)
                if messages:
                    ctx.set_value(list(messages))
                ctx.vote_to_halt()

        g = from_edge_list([(0, 2), (1, 2)])
        result = run_program(g, TwoSends())
        assert result.values[2] == [10]  # combined to the min
        assert result.metrics.supersteps[0].messages_combined == 1

    def test_combiner_disabled_by_config(self):
        class TwoSends(VertexProgram):
            def combiner(self):
                return MinCombiner()

            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id in (0, 1):
                    ctx.send(2, ctx.vertex_id + 10)
                if messages:
                    ctx.set_value(sorted(messages))
                ctx.vote_to_halt()

        g = from_edge_list([(0, 2), (1, 2)])
        config = EngineConfig(use_combiner=False)
        result = run_program(g, TwoSends(), config=config)
        assert result.values[2] == [10, 11]

    def test_cross_worker_accounting(self):
        prog = FunctionProgram(
            lambda ctx, msgs: (
                ctx.send_to_all("m") if ctx.superstep == 0 else None,
                ctx.vote_to_halt(),
            )
        )
        config = EngineConfig(num_workers=2)
        result = run_program(chain_graph(10), prog, config=config)
        step0 = result.metrics.supersteps[0]
        # chain edges i -> i+1 always cross with 2-worker modulo hashing
        assert step0.cross_worker_messages == step0.messages_sent == 9

    def test_message_bytes_tracked_when_enabled(self):
        prog = FunctionProgram(
            lambda ctx, msgs: (
                ctx.send_to_all("hello") if ctx.superstep == 0 else None,
                ctx.vote_to_halt(),
            )
        )
        config = EngineConfig(track_message_bytes=True)
        result = run_program(chain_graph(3), prog, config=config)
        assert result.metrics.total_message_bytes > 0


class TestEdgeValueOverlay:
    def test_overlay_does_not_mutate_graph(self):
        g = chain_graph(2)
        g.set_edge_value(0, 1, 1.0)

        def fn(ctx, msgs):
            if ctx.vertex_id == 0:
                ctx.set_edge_value(1, 99.0)
                assert ctx.edge_value(1) == 99.0
            ctx.vote_to_halt()

        result = run_program(g, FunctionProgram(fn))
        assert g.edge_value(0, 1) == 1.0  # input untouched
        assert result.edge_values[(0, 1)] == 99.0

    def test_overlay_visible_in_out_edges(self):
        g = chain_graph(2)
        seen = {}

        def fn(ctx, msgs):
            if ctx.vertex_id == 0:
                if ctx.superstep == 0:
                    ctx.set_edge_value(1, "new")
                else:
                    seen["edges"] = ctx.out_edges()
                    ctx.vote_to_halt()
                    return
                ctx.send(0, "again")
            ctx.vote_to_halt()

        run_program(g, FunctionProgram(fn))
        assert seen["edges"] == [(1, "new")]

    def test_setting_missing_edge_raises(self):
        prog = FunctionProgram(lambda ctx, msgs: ctx.set_edge_value(5, 1))
        with pytest.raises(VertexProgramError):
            run_program(chain_graph(2), prog)


class TestErrors:
    def test_vertex_error_wraps_cause(self):
        def fn(ctx, msgs):
            if ctx.vertex_id == 1:
                raise ValueError("boom")
            ctx.vote_to_halt()

        with pytest.raises(VertexProgramError) as info:
            run_program(chain_graph(3), FunctionProgram(fn))
        assert info.value.vertex_id == 1
        assert info.value.superstep == 0
        assert isinstance(info.value.cause, ValueError)

    def test_config_validation(self):
        with pytest.raises(EngineError):
            EngineConfig(num_workers=0).validate()
        with pytest.raises(EngineError):
            PregelEngine(chain_graph(2), config=EngineConfig(max_supersteps=0))


class TestDeterminism:
    def test_repeated_runs_identical(self):
        g = chain_graph(20)
        r1 = run_program(g, Broadcast(rounds=25))
        r2 = run_program(g, Broadcast(rounds=25))
        assert r1.values == r2.values
        assert r1.num_supersteps == r2.num_supersteps
