"""Unit tests for Pregel aggregators."""

import pytest

from repro.engine.aggregators import (
    Aggregator,
    AggregatorRegistry,
    count_aggregator,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.engine.engine import run_program
from repro.engine.vertex import VertexProgram
from repro.graph.generators import chain_graph


class TestAggregator:
    def test_value_lags_one_barrier(self):
        agg = sum_aggregator()
        agg.aggregate(2.0)
        agg.aggregate(3.0)
        assert agg.value == 0.0  # not yet visible
        agg.barrier()
        assert agg.value == 5.0
        agg.barrier()
        assert agg.value == 0.0  # reset after an empty superstep

    def test_min_max_count(self):
        mn, mx, ct = min_aggregator(), max_aggregator(), count_aggregator()
        for v in (3, 1, 2):
            mn.aggregate(v)
            mx.aggregate(v)
            ct.aggregate(1)
        for a in (mn, mx, ct):
            a.barrier()
        assert mn.value == 1
        assert mx.value == 3
        assert ct.value == 3

    def test_reset(self):
        agg = sum_aggregator()
        agg.aggregate(1.0)
        agg.barrier()
        agg.reset()
        assert agg.value == 0.0


class TestRegistry:
    def test_lookup_and_values(self):
        reg = AggregatorRegistry({"s": sum_aggregator()})
        assert "s" in reg
        reg.aggregate("s", 4.0)
        reg.barrier()
        assert reg.value("s") == 4.0
        assert reg.values() == {"s": 4.0}

    def test_unknown_name_raises(self):
        reg = AggregatorRegistry()
        with pytest.raises(KeyError):
            reg.aggregate("missing", 1)


class TestEngineIntegration:
    def test_vertices_see_previous_superstep_value(self):
        observed = {}

        class Prog(VertexProgram):
            def aggregators(self):
                return {"total": sum_aggregator()}

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.aggregate("total", 1.0)
                    ctx.send_to_all("go")
                elif ctx.vertex_id == 1:
                    # vertex 1 receives a message, so it computes at step 1
                    observed["total"] = ctx.aggregated("total")
                ctx.vote_to_halt()

        run_program(chain_graph(4), Prog())
        assert observed["total"] == 4.0

    def test_master_halt_stops_run(self):
        class Prog(VertexProgram):
            def aggregators(self):
                return {"active": count_aggregator()}

            def compute(self, ctx, messages):
                ctx.aggregate("active", 1)
                ctx.send_to_all("again")
                ctx.vote_to_halt()

            def master_halt(self, aggregators, superstep):
                return superstep >= 2

        result = run_program(chain_graph(3), Prog())
        assert result.num_supersteps == 3
        assert result.halt_reason == "master_halt"
        # Final aggregator value reflects the last superstep, where only the
        # chain's tail vertex still received a message and computed.
        assert result.aggregators["active"] == 1
