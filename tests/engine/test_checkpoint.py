"""Tests for superstep checkpointing and resume."""

import os

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.engine.checkpoint import (
    CheckpointedEngine,
    latest_checkpoint,
    load_checkpoint,
    resume,
)
from repro.engine.engine import run_program
from repro.errors import EngineError
from repro.graph.generators import web_graph, with_random_weights


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(150, avg_degree=5, target_diameter=10, seed=131), seed=131
    )


class TestCheckpointing:
    def test_checkpoints_written_at_interval(self, wgraph, tmp_path):
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=3)
        result = engine.run(SSSP(source=0).make_program())
        assert engine.checkpoints_written == result.num_supersteps // 3
        assert latest_checkpoint(str(tmp_path)) is not None

    def test_checkpointed_run_matches_plain_run(self, wgraph, tmp_path):
        plain = run_program(wgraph, SSSP(source=0).make_program())
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=4)
        checked = engine.run(SSSP(source=0).make_program())
        assert checked.values == plain.values
        assert checked.num_supersteps == plain.num_supersteps

    def test_resume_produces_identical_result(self, wgraph, tmp_path):
        full = run_program(wgraph, SSSP(source=0).make_program())
        # simulate a crash: run only 6 supersteps, checkpointing every 3
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=3)
        engine.run(SSSP(source=0).make_program(), max_supersteps=6)
        # the "restarted" job resumes from superstep 6
        resumed = resume(
            wgraph, SSSP(source=0).make_program(), str(tmp_path), interval=3
        )
        assert resumed.values == full.values

    def test_resume_pagerank_fixed_iterations(self, wgraph, tmp_path):
        full = run_program(wgraph, PageRank(num_supersteps=12).make_program())
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=5)
        engine.run(
            PageRank(num_supersteps=12).make_program(), max_supersteps=7
        )
        resumed = resume(
            wgraph, PageRank(num_supersteps=12).make_program(),
            str(tmp_path), interval=5,
        )
        for v in wgraph.vertices():
            assert resumed.values[v] == pytest.approx(full.values[v])

    def test_snapshot_contents(self, wgraph, tmp_path):
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=2)
        engine.run(SSSP(source=0).make_program(), max_supersteps=4)
        snapshot = load_checkpoint(latest_checkpoint(str(tmp_path)))
        assert snapshot.superstep in (2, 4)
        assert set(snapshot.values) == set(wgraph.vertices())
        assert set(snapshot.halted) == set(wgraph.vertices())

    def test_resume_without_checkpoint_raises(self, wgraph, tmp_path):
        with pytest.raises(EngineError, match="no checkpoint"):
            resume(wgraph, SSSP(source=0).make_program(),
                   str(tmp_path / "empty"))

    def test_bad_interval(self, wgraph, tmp_path):
        with pytest.raises(EngineError):
            CheckpointedEngine(wgraph, str(tmp_path), interval=0)

    def test_provenance_wrapper_rejected(self, wgraph, tmp_path):
        from repro.core import queries as Q
        from repro.pql.analysis import compile_query
        from repro.pql.parser import parse
        from repro.pql.udf import FunctionRegistry
        from repro.runtime.online import OnlineQueryProgram

        funcs = FunctionRegistry()
        compiled = compile_query(
            parse(Q.SSSP_WCC_STABILITY_QUERY), functions=funcs
        )
        wrapper = OnlineQueryProgram(
            SSSP(source=0).make_program(), compiled, funcs, wgraph
        )
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=2)
        with pytest.raises(EngineError, match="provenance"):
            engine.run(wrapper)

    def test_no_torn_files(self, wgraph, tmp_path):
        engine = CheckpointedEngine(wgraph, str(tmp_path), interval=2)
        engine.run(SSSP(source=0).make_program())
        for name in os.listdir(tmp_path):
            assert not name.endswith(".tmp")
