"""Unit tests for the asyncio HTTP/1.1 framing layer."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    parse_float,
    parse_int,
    read_request,
    response_bytes,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes through read_request on a throwaway loop."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)
    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /runs?limit=5 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/runs"
        assert request.query == {"limit": "5"}
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        body = json.dumps({"path": "/x"}).encode()
        request = parse(b"POST /runs HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.json() == {"path": "/x"}

    def test_percent_decoding_in_path(self):
        request = parse(b"GET /runs/r1/lineage/%281%2C%202%29 HTTP/1.1\r\n"
                        b"\r\n")
        assert request.path == "/runs/r1/lineage/(1, 2)"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"BROKEN\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert excinfo.value.code == "bad_version"

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 411

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.code == "bad_length"

    def test_body_over_limit_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n",
                  max_body=10)
        assert excinfo.value.status == 413

    def test_truncated_body_raises_incomplete_read(self):
        with pytest.raises(asyncio.IncompleteReadError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")

    def test_too_many_headers(self):
        headers = b"".join(b"X-H%d: v\r\n" % i for i in range(101))
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert excinfo.value.code == "too_many_headers"

    def test_malformed_header(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.code == "bad_header"


class TestResponses:
    def test_response_bytes_framing(self):
        raw = response_bytes(200, b"hi", "text/plain", keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert body == b"hi"

    def test_json_response_is_canonical(self):
        raw = json_response(200, {"b": 1, "a": 2})
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert body == b'{"a":2,"b":1}\n'

    def test_unknown_status_reason(self):
        raw = response_bytes(599, b"")
        assert raw.startswith(b"HTTP/1.1 599 Unknown")


class TestHelpers:
    def test_request_json_error(self):
        request = Request("POST", "/x", {}, b"{broken")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.code == "bad_json"

    def test_empty_body_decodes_to_empty_object(self):
        assert Request("POST", "/x", {}, b"").json() == {}

    def test_parse_int(self):
        assert parse_int("5", "n") == 5
        with pytest.raises(HttpError):
            parse_int("x", "n")
        with pytest.raises(HttpError):
            parse_int("0", "n", minimum=1)

    def test_parse_float(self):
        assert parse_float("0.5", "t") == 0.5
        with pytest.raises(HttpError):
            parse_float("soon", "t")

    def test_http_error_body(self):
        exc = HttpError(404, "unknown_run", "nope", runs=["a"])
        assert exc.body() == {
            "error": "unknown_run", "message": "nope", "runs": ["a"]}
