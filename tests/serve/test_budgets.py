"""Budget enforcement: structured errors for every budget kind, and the
no-leaked-executor-task guarantee (including under asyncio cancellation)."""

import asyncio
import time

import pytest

from repro.core import queries as Q
from repro.errors import BudgetExceededError
from repro.pql.budget import TICK_STRIDE, QueryBudget
from repro.runtime.offline import run_layered, run_naive
from repro.serve.app import ReproServer
from repro.serve.catalog import RunCatalog

from tests.serve.conftest import run_id_for


def lineage_params(store):
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


class TestQueryBudgetUnit:
    def test_validation(self):
        for bad in (dict(max_depth=0), dict(max_rows=-1),
                    dict(timeout_seconds=0)):
            with pytest.raises(ValueError):
                QueryBudget(**bad)

    def test_depth(self):
        budget = QueryBudget(max_depth=2).start()
        budget.note_layer()
        budget.note_layer()
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.note_layer()
        assert excinfo.value.kind == "depth"
        assert excinfo.value.to_dict()["limit"] == 2

    def test_check_depth_up_front(self):
        budget = QueryBudget(max_depth=3).start()
        budget.check_depth(3)
        with pytest.raises(BudgetExceededError):
            budget.check_depth(4)

    def test_rows(self):
        budget = QueryBudget(max_rows=10).start()
        budget.add_rows(7)
        budget.add_rows(3)
        assert budget.rows == 10
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.add_rows(1)
        assert excinfo.value.kind == "rows"

    def test_timeout_via_tick_stride(self):
        budget = QueryBudget(timeout_seconds=0.01).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExceededError) as excinfo:
            for _ in range(TICK_STRIDE + 1):
                budget.tick()
        assert excinfo.value.kind == "timeout"

    def test_cancel_trips_next_tick(self):
        budget = QueryBudget().start()
        budget.tick()
        budget.cancel()
        assert budget.cancelled
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.tick()
        assert excinfo.value.kind == "cancelled"

    def test_unlimited_budget_never_trips(self):
        budget = QueryBudget().start()
        for _ in range(3 * TICK_STRIDE):
            budget.tick()
        budget.add_rows(10**9)
        budget.note_layer()

    def test_describe_is_json_safe(self):
        budget = QueryBudget(max_depth=4, max_rows=100, timeout_seconds=1.5)
        assert budget.describe() == {
            "max_depth": 4, "max_rows": 100, "timeout_seconds": 1.5}

    def test_error_to_dict(self):
        exc = BudgetExceededError("rows", 5, "derived 6 rows")
        doc = exc.to_dict()
        assert doc["error"] == "budget_exceeded"
        assert doc["kind"] == "rows" and doc["limit"] == 5


class TestEvaluatorEnforcement:
    """Budgets trip inside the offline drivers themselves."""

    def test_layered_depth(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_layered(entry.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                        params=lineage_params(entry.store),
                        budget=QueryBudget(max_depth=1))
        assert excinfo.value.kind == "depth"

    def test_naive_depth_up_front(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_naive(entry.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                      params=lineage_params(entry.store),
                      budget=QueryBudget(max_depth=1))
        assert excinfo.value.kind == "depth"

    def test_layered_rows(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_layered(entry.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                        params=lineage_params(entry.store),
                        budget=QueryBudget(max_rows=1))
        assert excinfo.value.kind == "rows"

    def test_ample_budget_result_matches_unbudgeted(self, catalog,
                                                    sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        params = lineage_params(entry.store)
        free = run_layered(entry.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                           params=params)
        bounded = run_layered(
            entry.store, Q.BACKWARD_LINEAGE_FULL_QUERY, params=params,
            budget=QueryBudget(max_depth=10_000, max_rows=10**9,
                               timeout_seconds=600))
        for relation in free.relations():
            assert free.rows(relation) == bounded.rows(relation)


class TestServerEnforcement:
    """HTTP-level budget errors are structured and leak no executor work."""

    def _query(self, server, run_id, body):
        return server.request("POST", f"/runs/{run_id}/query", body=body)

    def _lineage_body(self, server, run_id):
        status, doc = server.request("GET", f"/runs/{run_id}")
        assert status == 200
        sigma = doc["layers"] - 1
        return {"query": "query10", "params": {"alpha": 0, "sigma": sigma}}

    def test_depth_budget_is_422(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        body = self._lineage_body(server, run_id)
        body["budget"] = {"max_depth": 1}
        status, doc = self._query(server, run_id, body)
        assert status == 422
        assert doc["error"] == "budget_exceeded"
        assert doc["kind"] == "depth" and doc["limit"] == 1
        assert "message" in doc

    def test_rows_budget_is_422(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        status, doc = self._query(server, run_id, {
            "query": "query10", "params": params,
            "budget": {"max_rows": 1},
        })
        assert status == 422
        assert doc["kind"] == "rows"

    def test_timeout_budget_is_408(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        status, doc = self._query(server, run_id, {
            "query": "query10", "params": params,
            "budget": {"timeout_seconds": 0.0001},
        })
        assert status == 408
        assert doc["error"] == "budget_exceeded"
        assert doc["kind"] == "timeout"

    def test_invalid_budget_is_400(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        for bad in ({"max_depth": 0}, {"max_rows": "lots"},
                    {"bogus_field": 1}):
            status, doc = self._query(server, run_id, {
                "query": "query10", "params": {"alpha": 0, "sigma": 0},
                "budget": bad,
            })
            assert status == 400
            assert doc["error"] == "bad_budget"

    def test_no_executor_leak_after_budget_errors(self, server, catalog,
                                                  sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        for budget in ({"max_depth": 1}, {"max_rows": 1},
                       {"timeout_seconds": 0.0001}):
            status, _ = self._query(server, run_id, {
                "query": "query10", "params": params, "budget": budget,
            })
            assert status in (408, 422)
        deadline = time.time() + 10
        while server.server.evals_running and time.time() < deadline:
            time.sleep(0.01)
        assert server.server.evals_running == 0

    def test_server_default_budget_applies(self, catalog, sssp_store):
        from repro.serve.testing import ServerThread
        catalog.register_path(sssp_store)
        with ServerThread(catalog=catalog, record_queries=False,
                          default_max_depth=1) as srv:
            run_id = run_id_for(catalog, sssp_store)
            entry = catalog.get(run_id)
            status, doc = srv.request(
                "POST", f"/runs/{run_id}/query",
                body={"query": "query10",
                      "params": lineage_params(entry.store)})
            assert status == 422 and doc["kind"] == "depth"
            # An explicit request budget overrides the server default.
            status, _ = srv.request(
                "POST", f"/runs/{run_id}/query",
                body={"query": "query10",
                      "params": lineage_params(entry.store),
                      "budget": {"max_depth": 10_000}})
            assert status == 200


class TestAsyncioCancellation:
    """Cancelling the awaiting request task revokes the budget and the
    executor thread unwinds within the grace period."""

    def test_cancelled_request_unwinds_worker(self, catalog, sssp_store):
        catalog.register_path(sssp_store)
        server = ReproServer(catalog, record_queries=False)

        async def scenario():
            budget = server._make_budget({})  # noqa: SLF001
            running = asyncio.Event()
            loop = asyncio.get_running_loop()

            def work():
                loop.call_soon_threadsafe(running.set)
                while True:  # spins until the revoked budget trips a tick
                    budget.tick()
                    time.sleep(0.0005)

            task = asyncio.ensure_future(
                server._offload(work, budget))  # noqa: SLF001
            await asyncio.wait_for(running.wait(), 10)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert budget.cancelled
            return budget

        try:
            asyncio.run(scenario())
            deadline = time.time() + 10
            while server.evals_running and time.time() < deadline:
                time.sleep(0.01)
            assert server.evals_running == 0
        finally:
            asyncio.run(server.aclose())

    def test_offload_timeout_raises_budget_error(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        server = ReproServer(catalog, record_queries=False)

        async def scenario():
            budget = QueryBudget(timeout_seconds=0.01)

            def work():
                # Ignores ticks for a while, then notices the revocation.
                deadline = time.time() + 5
                while time.time() < deadline:
                    budget.tick()
                    time.sleep(0.001)
                return "never"

            with pytest.raises(BudgetExceededError) as excinfo:
                await server._offload(work, budget)  # noqa: SLF001
            assert excinfo.value.kind == "timeout"

        try:
            asyncio.run(scenario())
            deadline = time.time() + 10
            while server.evals_running and time.time() < deadline:
                time.sleep(0.01)
            assert server.evals_running == 0
        finally:
            asyncio.run(server.aclose())
