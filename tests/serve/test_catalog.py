"""Tests for the run catalog: digest-verified admission, one open handle
per store, prepared-plan caching, and on-disk invalidation."""

import io
import os
import shutil
import tarfile
import time

import pytest

from repro.core import queries as Q
from repro.serve.catalog import AdmissionError, RunCatalog


def lineage_params(store):
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


class TestAdmission:
    def test_register_verifies_and_opens(self, catalog, sssp_store):
        entry, created = catalog.register_path(sssp_store)
        assert created
        assert entry.store.num_rows > 0
        assert entry.run_id
        assert len(catalog) == 1

    def test_tampered_store_rejected(self, catalog, sssp_store, tmp_path):
        tampered = str(tmp_path / "tampered")
        shutil.copytree(sssp_store, tampered)
        slabs = [n for n in os.listdir(tampered) if n.endswith(".slab")]
        with open(os.path.join(tampered, slabs[0]), "ab") as fh:
            fh.write(b"corruption")
        with pytest.raises(AdmissionError) as excinfo:
            catalog.register_path(tampered)
        assert excinfo.value.problems
        assert len(catalog) == 0  # nothing admitted

    def test_not_a_store_rejected(self, catalog, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(AdmissionError):
            catalog.register_path(str(empty))

    def test_verify_can_be_disabled(self, sssp_store, tmp_path):
        """A store whose manifest digests no longer match is rejected
        with verification on but admitted with it off (the slabs
        themselves are still readable)."""
        import json
        drifted = str(tmp_path / "drifted")
        shutil.copytree(sssp_store, drifted)
        manifest_path = os.path.join(drifted, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        for slab in manifest["slabs"].values():
            slab["sha256"] = "0" * 64
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(AdmissionError):
            RunCatalog(verify=True).register_path(drifted)
        entry, created = RunCatalog(verify=False).register_path(drifted)
        assert created and entry.store.num_rows > 0


class TestOneHandlePerStore:
    def test_same_path_returns_same_entry(self, catalog, sssp_store):
        first, created_first = catalog.register_path(sssp_store)
        second, created_second = catalog.register_path(sssp_store)
        assert created_first and not created_second
        assert first is second
        assert len(catalog) == 1

    def test_copied_directory_aliases_same_run(self, catalog, sssp_store,
                                               tmp_path):
        """The run id is content-derived, so a byte-identical copy maps
        to the already-open handle instead of a second store object."""
        copy = str(tmp_path / "copy")
        shutil.copytree(sssp_store, copy)
        original, _ = catalog.register_path(sssp_store)
        aliased, created = catalog.register_path(copy)
        assert aliased is original
        assert not created
        assert len(catalog) == 1

    def test_distinct_stores_get_distinct_entries(self, catalog, sssp_store,
                                                  pagerank_store):
        a, _ = catalog.register_path(sssp_store)
        b, _ = catalog.register_path(pagerank_store)
        assert a is not b
        assert a.run_id != b.run_id
        assert len(catalog) == 2
        assert catalog.get(a.run_id) is a
        assert catalog.get(b.run_id) is b


class TestPlanCache:
    def test_hit_after_miss(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        params = lineage_params(entry.store)
        with entry.eval_lock:
            _, outcome = entry.prepare(
                Q.BACKWARD_LINEAGE_FULL_QUERY, params, "layered", True)
            assert outcome == "miss"
            compiled, outcome = entry.prepare(
                Q.BACKWARD_LINEAGE_FULL_QUERY, params, "layered", True)
            assert outcome == "hit"
        assert entry.plan_hits == 1 and entry.plan_misses == 1
        assert compiled is not None

    def test_key_includes_params_mode_and_index_flag(self, catalog,
                                                     sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        base = lineage_params(entry.store)
        variants = [
            (base, "layered", True),
            ({**base, "sigma": 0}, "layered", True),
            (base, "naive", True),
            (base, "layered", False),
        ]
        with entry.eval_lock:
            for params, mode, use_index in variants:
                _, outcome = entry.prepare(
                    Q.BACKWARD_LINEAGE_FULL_QUERY, params, mode, use_index)
                assert outcome == "miss"
        assert entry.plan_misses == len(variants)
        assert entry.plan_cache_len == len(variants)

    def test_lru_eviction(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        entry._plan_cache_size = 2  # noqa: SLF001 - exercising the bound
        with entry.eval_lock:
            for sigma in (0, 1, 2):
                entry.prepare(Q.BACKWARD_LINEAGE_FULL_QUERY,
                              {"alpha": 0, "sigma": sigma}, "layered", True)
            assert entry.plan_cache_len == 2
            # sigma=0 was evicted; re-preparing it is a miss again.
            _, outcome = entry.prepare(
                Q.BACKWARD_LINEAGE_FULL_QUERY,
                {"alpha": 0, "sigma": 0}, "layered", True)
            assert outcome == "miss"


class TestInvalidation:
    def test_mtime_change_same_content_is_cheap(self, catalog, sssp_store):
        entry, _ = catalog.register_path(sssp_store)
        manifest = os.path.join(sssp_store, "manifest.json")
        os.utime(manifest, ns=(time.time_ns(), time.time_ns()))
        assert entry.ensure_fresh() is False
        assert entry.reloads == 0

    def test_content_change_reloads_and_drops_plans(self, catalog,
                                                    sssp_store, tmp_path):
        # Work on a copy so the session-scoped store stays pristine.
        copy = str(tmp_path / "reseal")
        shutil.copytree(sssp_store, copy)
        entry, _ = catalog.register_path(copy)
        with entry.eval_lock:
            entry.prepare(Q.BACKWARD_LINEAGE_FULL_QUERY,
                          lineage_params(entry.store), "layered", True)
        assert entry.plan_cache_len == 1
        manifest = os.path.join(copy, "manifest.json")
        with open(manifest) as fh:
            text = fh.read()
        # A cosmetic rewrite changes the digest without breaking
        # verification (whitespace is not part of slab digests).
        with open(manifest, "w") as fh:
            fh.write(text.replace("{", "{\n", 1))
        assert entry.ensure_fresh() is True
        assert entry.reloads == 1
        assert entry.plan_cache_len == 0
        assert entry.store.num_rows > 0

    def test_manifest_disappearing_is_admission_error(self, catalog,
                                                      sssp_store, tmp_path):
        copy = str(tmp_path / "gone")
        shutil.copytree(sssp_store, copy)
        entry, _ = catalog.register_path(copy)
        os.unlink(os.path.join(copy, "manifest.json"))
        with pytest.raises(AdmissionError):
            entry.ensure_fresh()


class TestUpload:
    def _tar_of(self, directory: str, prefix: str = "") -> bytes:
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w") as tar:
            for name in sorted(os.listdir(directory)):
                tar.add(os.path.join(directory, name),
                        arcname=prefix + name)
        return buffer.getvalue()

    def test_upload_round_trip(self, sssp_store, tmp_path):
        catalog = RunCatalog(data_dir=str(tmp_path / "uploads"))
        entry, created = catalog.register_upload(self._tar_of(sssp_store))
        assert created
        assert entry.store.num_rows > 0
        assert entry.directory.startswith(str(tmp_path / "uploads"))

    def test_upload_nested_names_flattened(self, sssp_store, tmp_path):
        catalog = RunCatalog(data_dir=str(tmp_path / "uploads"))
        tar_bytes = self._tar_of(sssp_store, prefix="some/deep/dir/")
        entry, _ = catalog.register_upload(tar_bytes)
        assert entry.store.num_rows > 0

    def test_upload_traversal_rejected(self, sssp_store, tmp_path):
        catalog = RunCatalog(data_dir=str(tmp_path / "uploads"))
        tar_bytes = self._tar_of(sssp_store, prefix="../escape/")
        with pytest.raises(AdmissionError, match="unsafe"):
            catalog.register_upload(tar_bytes)

    def test_upload_garbage_rejected(self, tmp_path):
        catalog = RunCatalog(data_dir=str(tmp_path / "uploads"))
        with pytest.raises(AdmissionError):
            catalog.register_upload(b"this is not a tar archive")

    def test_upload_of_known_run_aliases(self, sssp_store, tmp_path):
        catalog = RunCatalog(data_dir=str(tmp_path / "uploads"))
        original, _ = catalog.register_path(sssp_store)
        uploaded, created = catalog.register_upload(self._tar_of(sssp_store))
        assert uploaded is original
        assert not created
        assert len(catalog) == 1
