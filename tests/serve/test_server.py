"""End-to-end server tests over live HTTP, including the differential
guarantee: server query results are byte-identical to one-shot CLI
``repro query --json`` output, across stores and under concurrency."""

import io
import json
import os
import shutil
import subprocess
import sys
import tarfile
import threading
import time

import pytest

from repro.cli import main
from repro.pql.serialize import canonical_json
from repro.serve.testing import ServerThread

from tests.serve.conftest import run_id_for


def lineage_params(store):
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


def cli_json(capsys, store, query, params):
    """Run ``repro query --json`` in-process and return the parsed doc."""
    argv = ["query", "--store", store, "--query", query, "--json"]
    for key, value in params.items():
        argv += ["--param", f"{key}={value}"]
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


class TestBasicEndpoints:
    def test_index(self, server):
        status, doc = server.request("GET", "/")
        assert status == 200
        assert doc["service"] == "repro-serve"
        assert "POST /runs/{id}/query" in doc["endpoints"]

    def test_health(self, server):
        status, doc = server.request("GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["runs"] == 2

    def test_metrics_exposition(self, server):
        server.request("GET", "/runs")
        status, body = server.request("GET", "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_serve_requests_total" in text
        assert "repro_serve_catalog_runs 2" in text

    def test_list_and_show(self, server, catalog, sssp_store):
        status, doc = server.request("GET", "/runs")
        assert status == 200 and doc["count"] == 2
        run_id = run_id_for(catalog, sssp_store)
        status, doc = server.request("GET", f"/runs/{run_id}")
        assert status == 200
        assert doc["run_id"] == run_id
        assert doc["layers"] > 0 and doc["rows"] > 0
        assert doc["manifest"]["slabs"] > 0

    def test_unknown_run_404(self, server):
        status, doc = server.request("GET", "/runs/rmissing")
        assert status == 404
        assert doc["error"] == "unknown_run"
        assert len(doc["runs"]) == 2

    def test_unknown_route_404(self, server):
        status, doc = server.request("GET", "/nope")
        assert status == 404

    def test_method_not_allowed_405(self, server):
        status, doc = server.request("DELETE", "/runs")
        assert status == 405
        assert doc["error"] == "method_not_allowed"


class TestRegistration:
    def test_register_path_and_idempotency(self, catalog, sssp_store):
        with ServerThread(catalog=catalog, record_queries=False) as srv:
            status, doc = srv.request("POST", "/runs",
                                      body={"path": sssp_store})
            assert status == 201 and doc["created"]
            status, doc = srv.request("POST", "/runs",
                                      body={"path": sssp_store})
            assert status == 200 and not doc["created"]

    def test_register_bad_body(self, server):
        status, doc = server.request("POST", "/runs", body={"nope": 1})
        assert status == 400 and doc["error"] == "bad_register"

    def test_register_missing_store_is_422(self, server, tmp_path):
        empty = tmp_path / "void"
        empty.mkdir()
        status, doc = server.request("POST", "/runs",
                                     body={"path": str(empty)})
        assert status == 422
        assert doc["error"] == "admission_failed"
        assert doc["problems"]

    def test_register_tar_upload(self, sssp_store, tmp_path):
        from repro.serve.catalog import RunCatalog
        catalog = RunCatalog(data_dir=str(tmp_path / "data"))
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w") as tar:
            for name in sorted(os.listdir(sssp_store)):
                tar.add(os.path.join(sssp_store, name), arcname=name)
        with ServerThread(catalog=catalog, record_queries=False) as srv:
            status, doc = srv.request(
                "POST", "/runs", raw_body=buffer.getvalue(),
                headers={"Content-Type": "application/x-tar"})
            assert status == 201
            assert doc["run"]["rows"] > 0


class TestQueries:
    def test_full_result_with_named_query(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query",
            body={"query": "query10",
                  "params": lineage_params(entry.store)})
        assert status == 200
        assert doc["run"] == run_id
        assert doc["result"]["relations"]["back_lineage"]["count"] > 0
        assert doc["budget"] == {"max_depth": None, "max_rows": None,
                                 "timeout_seconds": 30.0}

    def test_inline_query(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query",
            body={"query": "out(X, I) :- superstep(X, I)."})
        assert status == 200
        assert doc["result"]["relations"]["out"]["count"] > 0

    def test_plan_cache_hit_on_repeat(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        body = {"query": "query10",
                "params": lineage_params(entry.store)}
        server.request("POST", f"/runs/{run_id}/query", body=body)
        status, doc = server.request("POST", f"/runs/{run_id}/query",
                                     body=body)
        assert status == 200
        assert doc["plan_cache"] == "hit"

    def test_query_error_is_structured(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query",
            body={"query": "broken(X :- nope"})
        assert status == 400
        assert doc["error"] == "query_error"
        assert doc["type"]

    def test_bad_bodies(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        cases = [
            ({}, "bad_query"),
            ({"query": 7}, "bad_query"),
            ({"query": "query10", "params": []}, "bad_query"),
            ({"query": "query10", "mode": "psychic"}, "bad_query"),
            ({"query": "query10", "limit": -2}, "bad_query"),
            ({"query": "query10", "cursor": 9}, "bad_query"),
        ]
        for body, code in cases:
            status, doc = server.request(
                "POST", f"/runs/{run_id}/query", body=body)
            assert status == 400 and doc["error"] == code, body


class TestEvaluatorChoice:
    def test_vectorized_default_and_row_path_override(self, server, catalog,
                                                      sssp_store):
        """Columnar stores vectorize by default; ``vectorize: false`` and
        ``use_index: false`` select the row paths — same result bytes."""
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        body = {"query": "query10", "params": lineage_params(entry.store)}
        status, vec = server.request(
            "POST", f"/runs/{run_id}/query", body=body)
        assert status == 200
        assert vec["stats"]["evaluator"] == "vectorized"
        assert vec["stats"]["vectorize"] is True
        assert vec["stats"]["batched_scans"] > 0
        assert vec["stats"]["kernel_seconds"]

        status, idx = server.request(
            "POST", f"/runs/{run_id}/query", body=dict(body,
                                                       vectorize=False))
        assert status == 200
        assert idx["stats"]["evaluator"] == "indexed"
        assert idx["result"] == vec["result"]

        status, scan = server.request(
            "POST", f"/runs/{run_id}/query",
            body=dict(body, vectorize=False, use_index=False))
        assert status == 200
        assert scan["stats"]["evaluator"] == "scan"
        assert scan["result"] == vec["result"]

    def test_eval_latency_metric_labeled_by_evaluator(self, server, catalog,
                                                      sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        body = {"query": "query10", "params": lineage_params(entry.store)}
        server.request("POST", f"/runs/{run_id}/query", body=body)
        server.request("POST", f"/runs/{run_id}/query",
                       body=dict(body, vectorize=False))
        status, raw = server.request("GET", "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert "repro_serve_query_eval_seconds" in text
        assert 'evaluator="vectorized"' in text
        assert 'evaluator="indexed"' in text


class TestPagination:
    def _body(self, catalog, run_id):
        entry = catalog.get(run_id)
        return {"query": "query10", "params": lineage_params(entry.store)}

    def test_paginated_walk_matches_full_result(self, server, catalog,
                                                sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        body = self._body(catalog, run_id)
        status, full = server.request(
            "POST", f"/runs/{run_id}/query", body=body)
        assert status == 200
        expected = [
            [relation, row]
            for relation in sorted(full["result"]["relations"])
            for row in full["result"]["relations"][relation]["rows"]
        ]
        collected = []
        cursor = None
        while True:
            page_body = dict(body, limit=7)
            if cursor:
                page_body["cursor"] = cursor
            status, doc = server.request(
                "POST", f"/runs/{run_id}/query", body=page_body)
            assert status == 200
            page = doc["page"]
            assert page["total_rows"] == len(expected)
            # Paged responses carry counts, not row bodies, in "result".
            assert "rows" not in next(
                iter(doc["result"]["relations"].values()))
            collected.extend(page["rows"])
            if page["next_cursor"] is None:
                break
            cursor = page["next_cursor"]
        assert collected == expected

    def test_stale_cursor_is_409(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        body = dict(self._body(catalog, run_id), limit=2)
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query", body=body)
        cursor = doc["page"]["next_cursor"]
        assert cursor
        other = dict(body, params={"alpha": 0, "sigma": 0}, cursor=cursor)
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query", body=other)
        assert status == 409
        assert doc["error"] == "bad_cursor"

    def test_garbage_cursor_is_400(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        body = dict(self._body(catalog, run_id), limit=2, cursor="!!!")
        status, doc = server.request(
            "POST", f"/runs/{run_id}/query", body=body)
        assert status == 400
        assert doc["error"] == "bad_cursor"


class TestLineage:
    def test_backward_lineage(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        status, doc = server.request(
            "GET", f"/runs/{run_id}/lineage/{params['alpha']}"
                   f"?sigma={params['sigma']}")
        assert status == 200
        assert doc["direction"] == "backward"
        assert doc["vertex"] == params["alpha"]
        assert doc["result"]["relations"]["back_lineage"]["count"] > 0

    def test_forward_lineage(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        status, doc = server.request(
            "GET", f"/runs/{run_id}/lineage/0?direction=forward&sigma=0")
        assert status == 200
        assert doc["direction"] == "forward"

    def test_lineage_depth_budget(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        status, doc = server.request(
            "GET", f"/runs/{run_id}/lineage/{params['alpha']}"
                   f"?sigma={params['sigma']}&depth=1")
        assert status == 422
        assert doc["kind"] == "depth"

    def test_lineage_bad_direction(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        status, doc = server.request(
            "GET", f"/runs/{run_id}/lineage/0?direction=sideways")
        assert status == 400

    def test_lineage_pagination(self, server, catalog, sssp_store):
        run_id = run_id_for(catalog, sssp_store)
        entry = catalog.get(run_id)
        params = lineage_params(entry.store)
        status, doc = server.request(
            "GET", f"/runs/{run_id}/lineage/{params['alpha']}"
                   f"?sigma={params['sigma']}&limit=3")
        assert status == 200
        assert len(doc["page"]["rows"]) <= 3
        assert doc["page"]["total_rows"] > 0


class TestDifferentialCLI:
    """The acceptance guarantee: concurrent HTTP queries over two open
    stores return byte-identical results to one-shot CLI invocations."""

    def test_server_matches_cli_byte_for_byte(self, server, catalog,
                                              sssp_store, pagerank_store,
                                              capsys):
        cases = []
        for store in (sssp_store, pagerank_store):
            run_id = run_id_for(catalog, store)
            entry = catalog.get(run_id)
            cases.append((store, run_id, lineage_params(entry.store)))
            cases.append((store, run_id, {"alpha": 0, "sigma": 0}))

        expected = {}
        for store, run_id, params in cases:
            doc = cli_json(capsys, store, "query10", params)
            expected[(run_id, canonical_json(params))] = \
                canonical_json(doc["result"])

        outputs = {}
        errors = []

        def hit(run_id, params):
            try:
                status, doc = server.request(
                    "POST", f"/runs/{run_id}/query",
                    body={"query": "query10", "params": params})
                assert status == 200, doc
                outputs[(run_id, canonical_json(params))] = \
                    canonical_json(doc["result"])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(run_id, params))
            for _store, run_id, params in cases
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert outputs == expected


class TestLedgerRecording:
    def test_served_query_appends_parent_linked_record(self, sssp_store,
                                                       tmp_path):
        from repro.obs.ledger import RunLedger
        from repro.serve.catalog import RunCatalog
        store_copy = str(tmp_path / "ledgered")
        shutil.copytree(sssp_store, store_copy)
        catalog = RunCatalog()
        with ServerThread(catalog=catalog, record_queries=True) as srv:
            status, doc = srv.request("POST", "/runs",
                                      body={"path": store_copy})
            run_id = doc["run"]["run_id"]
            status, _ = srv.request(
                "POST", f"/runs/{run_id}/query",
                body={"query": "query10",
                      "params": {"alpha": 0, "sigma": 0}})
            assert status == 200
        records = [r for r in RunLedger(store_copy).records()
                   if r.get("command") == "serve-query"]
        assert records
        assert records[-1]["parent_run_id"] == run_id


class TestServeCLI:
    def test_repro_serve_subprocess(self, sssp_store, tmp_path):
        """`repro serve` comes up, writes the ready file, and answers."""
        import http.client
        ready = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", sssp_store, "--port", "0",
             "--ready-file", str(ready), "--no-query-ledger"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.time() + 30
            while not ready.exists() and time.time() < deadline:
                if proc.poll() is not None:
                    raise AssertionError(
                        f"server exited early: "
                        f"{proc.stderr.read().decode()}")
                time.sleep(0.05)
            assert ready.exists(), "ready file never appeared"
            host, port = ready.read_text().strip().rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=10)
            conn.request("GET", "/runs")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 200
            assert doc["count"] == 1
            conn.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
