"""Fixtures for the serve subsystem: sealed captures and a live server."""

from __future__ import annotations

import pytest

from repro import Ariadne, PageRank, SSSP
from repro.graph.generators import web_graph, with_random_weights
from repro.provenance.spill import SpillManager
from repro.serve.catalog import RunCatalog
from repro.serve.testing import ServerThread


def seal_capture(graph, analytic, directory: str) -> str:
    """Run one traced capture and seal it into ``directory``.

    The spill is deliberately not closed — ``close()`` deletes the slabs,
    and the server is about to reopen them from disk.
    """
    capture = Ariadne(graph, analytic).capture()
    spill = SpillManager(capture.store, directory=directory,
                         async_writes=False)
    spill.seal_all()
    return directory


@pytest.fixture(scope="session")
def serve_graph():
    return with_random_weights(
        web_graph(60, avg_degree=4, target_diameter=8, seed=17), seed=17
    )


@pytest.fixture(scope="session")
def sssp_store(serve_graph, tmp_path_factory) -> str:
    """A sealed SSSP capture (the 'store-a' of the serve tests)."""
    directory = str(tmp_path_factory.mktemp("serve") / "sssp")
    return seal_capture(serve_graph, SSSP(source=0), directory)


@pytest.fixture(scope="session")
def pagerank_store(serve_graph, tmp_path_factory) -> str:
    """A sealed PageRank capture (the 'store-b' of the serve tests)."""
    directory = str(tmp_path_factory.mktemp("serve") / "pagerank")
    return seal_capture(
        serve_graph, PageRank(num_supersteps=6), directory)


@pytest.fixture
def catalog() -> RunCatalog:
    return RunCatalog()


@pytest.fixture
def server(catalog, sssp_store, pagerank_store):
    """A live server with both stores registered; yields the harness."""
    catalog.register_path(sssp_store)
    catalog.register_path(pagerank_store)
    with ServerThread(catalog=catalog, record_queries=False) as srv:
        yield srv


def run_id_for(catalog: RunCatalog, directory: str) -> str:
    import os
    entry = catalog._by_path[os.path.abspath(directory)]  # noqa: SLF001
    return entry.run_id
