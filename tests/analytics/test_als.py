"""Unit tests for the ALS recommender analytic."""

import math

import numpy as np
import pytest

from repro.analytics.als import ALS, rmse_of_run
from repro.engine.engine import run_program
from repro.graph.generators import movielens_like


@pytest.fixture(scope="module")
def small_ratings():
    return movielens_like(40, 25, 400, num_features=4, seed=9)


def run_als(bg, **kwargs):
    analytic = ALS(bg, **kwargs)
    graph = bg.to_digraph()
    result = run_program(graph, analytic.make_program())
    return analytic, result


class TestALS:
    def test_alternation_converges(self, small_ratings):
        _a, result = run_als(small_ratings, num_features=4, max_rounds=8)
        rmse = rmse_of_run(result.aggregators)
        assert rmse < 1.0  # synthetic data has low-rank structure + noise

    def test_error_decreases_over_rounds(self, small_ratings):
        _, short = run_als(small_ratings, num_features=4, max_rounds=1,
                           tolerance=0.0)
        _, long = run_als(small_ratings, num_features=4, max_rounds=8,
                          tolerance=0.0)
        assert rmse_of_run(long.aggregators) <= rmse_of_run(short.aggregators) + 1e-9

    def test_edge_values_carry_rating_prediction_error(self, small_ratings):
        _a, result = run_als(small_ratings, num_features=4, max_rounds=3)
        assert result.edge_values
        for (_u, _v), value in result.edge_values.items():
            rating, prediction, error = value
            assert 0.0 <= rating <= 5.0
            assert error == pytest.approx(rating - prediction)

    def test_only_one_side_computes_per_superstep(self, small_ratings):
        analytic, result = run_als(small_ratings, num_features=4, max_rounds=3)
        num_users = small_ratings.num_users
        # Superstep 1 updates users: every updated vector belongs to a user.
        # We can't observe per-superstep values directly, but the alternation
        # implies the run used an odd number of supersteps >= 3.
        assert result.num_supersteps >= 3

    def test_vectors_have_requested_dimension(self, small_ratings):
        _a, result = run_als(small_ratings, num_features=6, max_rounds=2)
        for value in result.values.values():
            assert np.asarray(value).shape == (6,)

    def test_deterministic_given_seed(self, small_ratings):
        _a1, r1 = run_als(small_ratings, num_features=4, max_rounds=3, seed=5)
        _a2, r2 = run_als(small_ratings, num_features=4, max_rounds=3, seed=5)
        for v in r1.values:
            assert np.allclose(r1.values[v], r2.values[v])

    def test_value_diff_is_euclidean(self):
        bg = movielens_like(10, 5, 30, seed=1)
        a = ALS(bg)
        assert a.value_diff((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
        assert a.value_diff(None, (1.0,)) == float("inf")

    def test_provenance_value_is_flat_tuple(self):
        bg = movielens_like(10, 5, 30, seed=1)
        a = ALS(bg)
        frozen = a.provenance_value(np.array([1.0, 2.0]))
        assert frozen == (1.0, 2.0)
        assert hash(frozen) is not None

    def test_rmse_of_run_handles_empty(self):
        assert math.isnan(rmse_of_run({}))
