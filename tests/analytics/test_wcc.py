"""Unit tests for weakly connected components."""

import pytest

from repro.analytics.wcc import WCC
from repro.engine.engine import PregelEngine, run_program
from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import chain_graph, web_graph
from repro.graph.stats import weakly_connected_components


def labels(graph):
    return run_program(graph, WCC().make_program()).values


class TestExactWCC:
    def test_single_component(self):
        g = from_edge_list([(3, 2), (2, 1), (1, 0)])
        assert set(labels(g).values()) == {0}

    def test_two_components(self):
        g = from_edge_list([(0, 1), (5, 6)])
        lab = labels(g)
        assert lab[0] == lab[1] == 0
        assert lab[5] == lab[6] == 5

    def test_direction_ignored(self):
        # 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
        g = from_edge_list([(0, 1), (2, 1)])
        assert set(labels(g).values()) == {0}

    def test_isolated_vertex_keeps_own_label(self):
        g = chain_graph(3)
        g.add_vertex(42)
        lab = labels(g)
        assert lab[42] == 42

    def test_matches_bfs_oracle(self, small_web):
        lab = labels(small_web)
        for component in weakly_connected_components(small_web):
            expected = min(component)
            for v in component:
                assert lab[v] == expected

    def test_no_duplicate_messages_to_shared_neighbor(self):
        # u <-> v: both an out- and in-neighbor; broadcast must dedupe.
        g = from_edge_list([(0, 1), (1, 0)])
        result = run_program(g, WCC().make_program())
        assert result.metrics.supersteps[0].messages_sent == 2


class TestApproximateWCC:
    def test_suppression_breaks_chains(self):
        # Consecutive ids along a path: every improvement is exactly 1,
        # which epsilon = 1 suppresses — the paper's "unsafe to
        # approximate" scenario realized.
        g = chain_graph(10, bidirectional=True)
        exact = labels(g)
        approx = run_program(g, WCC(epsilon=1.0).make_program()).values
        assert set(exact.values()) == {0}
        wrong = sum(1 for v in g.vertices() if approx[v] != exact[v])
        assert wrong >= 7  # propagation dies right after the source

    def test_epsilon_zero_is_exact(self, small_web):
        exact = labels(small_web)
        same = run_program(small_web, WCC(epsilon=0.0).make_program()).values
        assert exact == same

    def test_name(self):
        assert WCC().name == "wcc"
        assert "1.0" in WCC(epsilon=1.0).name
