"""Unit tests for PageRank (exact and approximate)."""

import pytest

from repro.analytics.error import normalized_error
from repro.analytics.pagerank import PageRank
from repro.engine.engine import PregelEngine, run_program
from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import web_graph


def ranks(analytic, graph, **kwargs):
    result = run_program(graph, analytic.make_program(), **kwargs)
    return {v: analytic.provenance_value(val) for v, val in result.values.items()}


class TestExactPageRank:
    def test_fixed_superstep_count(self):
        g = web_graph(100, avg_degree=4, seed=1)
        result = run_program(g, PageRank(num_supersteps=10).make_program())
        assert result.num_supersteps == 10

    def test_ranks_average_one(self):
        # Unnormalized Giraph formulation: ranks sum to ~N (dangling
        # vertices leak a little mass).
        g = from_edge_list([(0, 1), (1, 2), (2, 0)])  # cycle: no leak
        r = ranks(PageRank(num_supersteps=30), g)
        assert sum(r.values()) == pytest.approx(3.0, rel=1e-6)

    def test_symmetric_cycle_uniform(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)])
        r = ranks(PageRank(num_supersteps=30), g)
        assert r[0] == pytest.approx(r[1]) == pytest.approx(r[2])

    def test_hub_outranks_leaf(self):
        # 1, 2, 3 all point at 0; 0 points at 1.
        g = from_edge_list([(1, 0), (2, 0), (3, 0), (0, 1)])
        r = ranks(PageRank(num_supersteps=30), g)
        assert r[0] > r[2]
        assert r[0] > r[3]

    def test_power_iteration_recurrence(self):
        # Two supersteps by hand: 0 -> 1, 1 -> 1 (self loop denies leak).
        g = from_edge_list([(0, 1), (1, 1)])
        r = ranks(PageRank(num_supersteps=2), g)
        # step 1: rank(1) = 0.15 + 0.85 * (contrib(0) + contrib(1)) = 0.15 + 0.85*2
        assert r[1] == pytest.approx(0.15 + 0.85 * 2.0)
        assert r[0] == pytest.approx(0.15)


class TestApproximatePageRank:
    def test_epsilon_zero_matches_exact(self):
        g = web_graph(200, avg_degree=5, seed=2)
        exact = PageRank(num_supersteps=15)
        approx = PageRank(num_supersteps=15, epsilon=0.0)
        re = ranks(exact, g)
        ra = ranks(approx, g)
        for v in re:
            assert ra[v] == pytest.approx(re[v], abs=1e-12)

    def test_large_epsilon_reduces_messages(self):
        g = web_graph(200, avg_degree=5, seed=3)
        engine = PregelEngine(g)
        exact = engine.run(PageRank(num_supersteps=15).make_program())
        approx = engine.run(
            PageRank(num_supersteps=15, epsilon=0.05).make_program()
        )
        assert approx.metrics.total_messages < exact.metrics.total_messages

    def test_error_small_for_small_epsilon(self):
        g = web_graph(300, avg_degree=6, seed=4)
        exact_a = PageRank(num_supersteps=20)
        approx_a = PageRank(num_supersteps=20, epsilon=0.01)
        v0 = exact_a.result_vector(run_program(g, exact_a.make_program()).values)
        v1 = approx_a.result_vector(run_program(g, approx_a.make_program()).values)
        assert normalized_error(v0, v1, p=2) < 0.05

    def test_name_reflects_epsilon(self):
        assert "0.01" in PageRank(epsilon=0.01).name
        assert PageRank().name == "pagerank"

    def test_value_diff_default(self):
        a = PageRank()
        assert a.value_diff(1.0, 1.5) == pytest.approx(0.5)
        assert a.value_diff(None, 1.0) == float("inf")
