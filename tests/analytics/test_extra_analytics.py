"""Tests for the additional analytics: HITS, label propagation, k-core, BFS."""

import math

import pytest

from repro.analytics.bfs import BFS
from repro.analytics.hits import HITS
from repro.analytics.kcore import KCore, h_index
from repro.analytics.label_propagation import LabelPropagation
from repro.engine.engine import run_program
from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import chain_graph, web_graph
from repro.graph.stats import bfs_levels


class TestBFS:
    def test_chain_levels(self):
        g = chain_graph(5)
        result = run_program(g, BFS(source=0).make_program())
        assert result.values == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_matches_oracle(self, small_web):
        result = run_program(small_web, BFS(source=0).make_program())
        oracle = bfs_levels(small_web, 0, undirected=False)
        for v in small_web.vertices():
            assert result.values[v] == oracle.get(v, math.inf)

    def test_reached_helper(self):
        g = from_edge_list([(0, 1)])
        g.add_vertex(9)
        analytic = BFS(source=0)
        result = run_program(g, analytic.make_program())
        assert sorted(analytic.reached(result.values)) == [0, 1]


class TestHITS:
    def test_authority_concentrates_on_popular_target(self):
        # 1, 2, 3 -> 0: vertex 0 is the clear authority.
        g = from_edge_list([(1, 0), (2, 0), (3, 0), (0, 1)])
        analytic = HITS(num_rounds=8)
        result = run_program(g, analytic.make_program())
        auth = analytic.authorities(result.values)
        assert auth[0] == max(auth.values())

    def test_hub_concentrates_on_fan_out(self):
        g = from_edge_list([(0, 1), (0, 2), (0, 3), (1, 2)])
        analytic = HITS(num_rounds=8)
        result = run_program(g, analytic.make_program())
        hubs = analytic.hubs(result.values)
        assert hubs[0] == max(hubs.values())

    def test_scores_are_finite_and_nonnegative(self, small_web):
        analytic = HITS(num_rounds=5)
        result = run_program(small_web, analytic.make_program())
        for hub, auth in result.values.values():
            assert math.isfinite(hub) and math.isfinite(auth)
            assert hub >= 0.0 and auth >= 0.0

    def test_value_diff_is_pair_distance(self):
        analytic = HITS()
        assert analytic.value_diff((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


class TestLabelPropagation:
    def test_two_cliques_two_communities(self):
        g = DiGraph()
        for clique in ([0, 1, 2, 3], [10, 11, 12, 13]):
            for u in clique:
                for v in clique:
                    if u != v:
                        g.add_edge(u, v)
        g.add_edge(3, 10)  # weak bridge
        analytic = LabelPropagation(max_rounds=10)
        result = run_program(g, analytic.make_program())
        communities = analytic.communities(result.values)
        # the two cliques keep separate labels despite the bridge
        assert len(communities) >= 2
        labels_a = {result.values[v] for v in (0, 1, 2)}
        labels_b = {result.values[v] for v in (11, 12, 13)}
        assert labels_a.isdisjoint(labels_b)

    def test_terminates_on_web_graph(self, small_web):
        result = run_program(
            small_web, LabelPropagation(max_rounds=8).make_program()
        )
        assert result.num_supersteps <= 11


class TestKCore:
    def test_h_index(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1, 1, 1]) == 1
        assert h_index([3, 3, 3]) == 3
        assert h_index([5, 4, 3, 2, 1]) == 3

    def test_clique_coreness(self):
        # K4: every vertex has coreness 3
        g = DiGraph()
        for u in range(4):
            for v in range(4):
                if u != v:
                    g.add_edge(u, v)
        analytic = KCore()
        result = run_program(g, analytic.make_program())
        assert analytic.coreness(result.values) == {v: 3 for v in range(4)}

    def test_chain_coreness_is_one(self):
        g = chain_graph(6, bidirectional=True)
        analytic = KCore()
        result = run_program(g, analytic.make_program())
        assert set(analytic.coreness(result.values).values()) == {1}

    def test_clique_with_pendant(self):
        g = DiGraph()
        for u in range(4):
            for v in range(4):
                if u != v:
                    g.add_edge(u, v)
        g.add_edge(4, 0)  # pendant vertex
        analytic = KCore()
        result = run_program(g, analytic.make_program())
        cores = analytic.coreness(result.values)
        assert cores[4] == 1
        assert all(cores[v] == 3 for v in range(4))

    def test_estimates_never_increase(self, small_web):
        # monotone decrease is the invariant Query 5 would verify
        from repro.core import queries as Q
        from repro.runtime.online import run_online

        analytic = KCore()
        result = run_online(
            small_web, analytic, Q.SSSP_WCC_UPDATE_CHECK_QUERY
        )
        increased = [
            row for row in result.query.rows("check_failed")
        ]
        assert increased == []
