"""Unit tests for SSSP against the Dijkstra oracle."""

import math

import pytest

from repro.analytics.error import normalized_error
from repro.analytics.sssp import SSSP
from repro.engine.engine import PregelEngine, run_program
from repro.graph.digraph import DiGraph
from repro.graph.generators import web_graph, with_random_weights
from repro.graph.stats import single_source_shortest_paths


class TestExactSSSP:
    def test_chain(self, weighted_chain):
        result = run_program(weighted_chain, SSSP(source=0).make_program())
        assert result.values == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_diamond_min_path(self, diamond):
        diamond.set_edge_value(0, 1, 5.0)  # make the 0->1->3 path longer
        result = run_program(diamond, SSSP(source=0).make_program())
        assert result.values[3] == pytest.approx(2.0)

    def test_unreachable_stays_infinite(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_vertex(9)
        result = run_program(g, SSSP(source=0).make_program())
        assert math.isinf(result.values[9])

    def test_matches_dijkstra_on_random_web(self, small_weighted_web):
        result = run_program(
            small_weighted_web, SSSP(source=0).make_program()
        )
        oracle = single_source_shortest_paths(small_weighted_web, 0)
        for v in small_weighted_web.vertices():
            expected = oracle.get(v, math.inf)
            assert result.values[v] == pytest.approx(expected, abs=1e-12)

    def test_missing_weights_default_to_one(self):
        g = DiGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        result = run_program(g, SSSP(source=0).make_program())
        assert result.values[2] == 2.0


class TestApproximateSSSP:
    def test_epsilon_suppresses_messages(self, small_weighted_web):
        engine = PregelEngine(small_weighted_web)
        exact = engine.run(SSSP(source=0).make_program())
        approx = engine.run(SSSP(source=0, epsilon=0.1).make_program())
        assert approx.metrics.total_messages < exact.metrics.total_messages

    def test_error_is_bounded(self, small_weighted_web):
        exact_a = SSSP(source=0)
        approx_a = SSSP(source=0, epsilon=0.1)
        v0 = exact_a.result_vector(
            run_program(small_weighted_web, exact_a.make_program()).values
        )
        v1 = approx_a.result_vector(
            run_program(small_weighted_web, approx_a.make_program()).values
        )
        err = normalized_error(v0, v1, p=1)
        assert 0.0 <= err < 0.25

    def test_approx_never_underestimates(self, small_weighted_web):
        # Suppressing relaxations can only leave distances too large.
        exact = run_program(
            small_weighted_web, SSSP(source=0).make_program()
        ).values
        approx = run_program(
            small_weighted_web, SSSP(source=0, epsilon=0.2).make_program()
        ).values
        for v in small_weighted_web.vertices():
            assert approx[v] >= exact[v] - 1e-12

    def test_default_error_norm_is_l1(self):
        assert SSSP().default_error_norm() == 1
