"""Unit tests for the normalized-error metrics of Section 6.2.2."""

import math

import pytest

from repro.analytics.error import lp_norm, median, normalized_error, trimmed_mean
from repro.errors import BenchmarkError


class TestLpNorm:
    def test_l1(self):
        assert lp_norm([1, -2, 3], p=1) == 6.0

    def test_l2(self):
        assert lp_norm([3, 4], p=2) == pytest.approx(5.0)

    def test_linf(self):
        assert lp_norm([1, -7, 3], p=0) == 7.0

    def test_higher_order(self):
        assert lp_norm([2, 2], p=3) == pytest.approx((16.0) ** (1 / 3))

    def test_empty(self):
        assert lp_norm([], p=2) == 0.0


class TestNormalizedError:
    def test_identical_vectors(self):
        assert normalized_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # L2: |(3,4)-(0,0)| / |(3,4)| = 1
        assert normalized_error([3.0, 4.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(BenchmarkError):
            normalized_error([1.0], [1.0, 2.0])

    def test_matching_infinities_excluded(self):
        err = normalized_error([1.0, math.inf], [2.0, math.inf], p=1)
        assert err == pytest.approx(1.0)

    def test_disagreeing_infinity_penalized(self):
        err = normalized_error([1.0, math.inf], [1.0, 3.0], p=1)
        assert err > 0.0

    def test_zero_denominator(self):
        assert normalized_error([0.0], [0.0]) == 0.0
        assert normalized_error([0.0], [1.0]) == float("inf")


class TestSummaries:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_ignores_inf(self):
        assert median([1.0, math.inf, 3.0]) == 2.0
        assert median([math.inf]) == math.inf

    def test_trimmed_mean_drops_extremes(self):
        # the paper's runtime statistic: drop shortest and longest of 5 runs
        assert trimmed_mean([100.0, 1.0, 2.0, 3.0, 0.0]) == 2.0

    def test_trimmed_mean_small_samples(self):
        assert trimmed_mean([4.0]) == 4.0
        assert trimmed_mean([2.0, 4.0]) == 3.0

    def test_trimmed_mean_empty_raises(self):
        with pytest.raises(BenchmarkError):
            trimmed_mean([])
