"""Unit tests for the serialized-size model."""

import numpy as np

from repro.graph.digraph import from_edge_list
from repro.sizemodel import estimate_bytes, graph_bytes


class TestEstimateBytes:
    def test_scalars(self):
        assert estimate_bytes(5) == 8
        assert estimate_bytes(1.5) == 8
        assert estimate_bytes(True) == 1
        assert estimate_bytes(None) == 1

    def test_strings(self):
        assert estimate_bytes("") == 4
        assert estimate_bytes("abcd") == 8
        assert estimate_bytes(b"xy") == 6

    def test_containers(self):
        assert estimate_bytes((1, 2)) == 4 + 16
        assert estimate_bytes([1, 2, 3]) == 4 + 24
        assert estimate_bytes({"k": 1}) == 4 + (4 + 1) + 8

    def test_nested(self):
        assert estimate_bytes(((1,), (2, 3))) == 4 + (4 + 8) + (4 + 16)

    def test_numpy(self):
        arr = np.zeros(4, dtype=np.float64)
        assert estimate_bytes(arr) == 4 + 32

    def test_unknown_object_uses_repr(self):
        class Thing:
            def __repr__(self):
                return "thing"

        assert estimate_bytes(Thing()) == 4 + 5

    def test_deterministic(self):
        v = (1, "abc", (2.5, None))
        assert estimate_bytes(v) == estimate_bytes(v)


class TestGraphBytes:
    def test_counts_vertices_and_edges(self):
        g = from_edge_list([(0, 1), (1, 2)])
        # 4 + 3*8 vertices + 2 edges * (16 + value)
        expected = 4 + 24 + 2 * (16 + 1)  # value None = 1 byte
        assert graph_bytes(g) == expected

    def test_weighted_edges_cost_more(self):
        g1 = from_edge_list([(0, 1)])
        g2 = from_edge_list([(0, 1)])
        g2.set_edge_value(0, 1, 3.14)
        assert graph_bytes(g2) > graph_bytes(g1)

    def test_scales_with_size(self):
        small = from_edge_list([(i, i + 1) for i in range(10)])
        large = from_edge_list([(i, i + 1) for i in range(100)])
        assert graph_bytes(large) > graph_bytes(small) * 5
