"""Unit tests for the PQL parser."""

import pytest

from repro.errors import PQLSyntaxError
from repro.pql.ast import (
    Aggregate,
    Atom,
    AtomLiteral,
    BinOp,
    BoolCall,
    Comparison,
    Const,
    FuncCall,
    Param,
    Var,
)
from repro.pql.parser import parse, parse_rule


class TestRules:
    def test_fact(self):
        rule = parse_rule("p(X, 1).")
        assert rule.is_fact
        assert rule.head == Atom("p", (Var("X"), Const(1)))

    def test_simple_rule(self):
        rule = parse_rule("p(X) :- q(X), r(X, Y).")
        assert rule.head.predicate == "p"
        assert [l.atom.predicate for l in rule.body] == ["q", "r"]

    def test_negation(self):
        rule = parse_rule("p(X) :- q(X), !r(X).")
        assert not rule.body[0].negated
        assert rule.body[1].negated

    def test_not_keyword(self):
        rule = parse_rule("p(X) :- not r(X).")
        assert rule.body[0].negated

    def test_multiple_rules(self):
        program = parse("p(X) :- q(X). r(Y) :- p(Y).")
        assert len(program.rules) == 2

    def test_missing_period(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X) :- q(X)")


class TestComparisons:
    def test_equality_normalized(self):
        r1 = parse_rule("p(X) :- q(X, I), I = 3.")
        r2 = parse_rule("p(X) :- q(X, I), I == 3.")
        assert r1.body[1] == r2.body[1]
        assert r1.body[1].op == "="

    def test_arithmetic(self):
        rule = parse_rule("p(X) :- q(X, I, J), J = I - 1.")
        cmp = rule.body[1]
        assert isinstance(cmp, Comparison)
        assert cmp.right == BinOp("-", Var("I"), Const(1))

    def test_precedence(self):
        rule = parse_rule("p(X) :- q(X, A), A = 1 + 2 * 3.")
        expr = rule.body[1].right
        assert expr == BinOp("+", Const(1), BinOp("*", Const(2), Const(3)))

    def test_parentheses(self):
        rule = parse_rule("p(X) :- q(X, A), A = (1 + 2) * 3.")
        expr = rule.body[1].right
        assert expr == BinOp("*", BinOp("+", Const(1), Const(2)), Const(3))

    def test_unary_minus_folds_constants(self):
        rule = parse_rule("p(X) :- q(X, A), A > -5.0.")
        assert rule.body[1].right == Const(-5.0)

    def test_all_operators(self):
        for op in ("!=", "<", "<=", ">", ">="):
            rule = parse_rule(f"p(X) :- q(X, A), A {op} 1.")
            assert rule.body[1].op == op


class TestTermsAndHeads:
    def test_params(self):
        rule = parse_rule("p(X) :- q(X, D), D < $eps.")
        assert rule.body[1].right == Param("eps")

    def test_string_and_symbol_constants(self):
        rule = parse_rule("p(X) :- q(X, 'lit', flag, true).")
        args = rule.body[0].atom.args
        assert args[1] == Const("lit")
        assert args[2] == Const("flag")
        assert args[3] == Const(True)

    def test_function_call_term(self):
        rule = parse_rule("p(X, E) :- q(X, V), E = elem(V, 2).")
        assert rule.body[1].right == FuncCall("elem", (Var("V"), Const(2)))

    def test_function_call_literal(self):
        rule = parse_rule("p(X) :- q(X, A), udf_diff(A, 1, $eps).")
        lit = rule.body[1]
        # parsed as an atom; analysis later rewrites to BoolCall
        assert isinstance(lit, AtomLiteral)
        assert lit.atom.predicate == "udf_diff"

    def test_aggregate_head(self):
        rule = parse_rule("deg(X, count(Y)) :- edge(Y, X).")
        agg = rule.head.args[1]
        assert agg == Aggregate("count", Var("Y"))

    def test_aggregate_in_body_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X) :- q(X, count(Y)).")

    def test_aggregate_arity(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X, count(Y, Z)) :- q(X, Y, Z).")

    def test_expression_head_arg(self):
        rule = parse_rule("avg(X, S / D) :- s(X, S), d(X, D).")
        assert rule.head.args[1] == BinOp("/", Var("S"), Var("D"))

    def test_anonymous_variable(self):
        rule = parse_rule("p(X) :- q(X, _).")
        assert rule.body[0].atom.args[1] == Var("_")


class TestProgramHelpers:
    def test_parameters_collected(self):
        program = parse("p(X) :- q(X, D), D < $eps, X = $src.")
        assert program.parameters() == frozenset({"eps", "src"})

    def test_bind_replaces_params(self):
        program = parse("p(X) :- q(X, D), D < $eps.")
        bound = program.bind(eps=0.5)
        assert bound.parameters() == frozenset()
        assert "0.5" in str(bound)

    def test_bind_missing_raises(self):
        program = parse("p(X) :- q(X, D), D < $eps.")
        with pytest.raises(Exception, match="eps"):
            program.bind()

    def test_head_and_body_predicates(self):
        program = parse("p(X) :- q(X). r(X) :- p(X).")
        assert program.head_predicates() == frozenset({"p", "r"})
        assert program.body_predicates() == frozenset({"q", "p"})

    def test_parse_rule_requires_single(self):
        with pytest.raises(PQLSyntaxError):
            parse_rule("p(X). q(X).")

    def test_str_roundtrips_through_parser(self):
        src = "p(X, I) :- q(X, D, I), !r(X), D > 1 + 2, udf(D)."
        program = parse(src)
        reparsed = parse(str(program))
        assert reparsed.rules == program.rules
