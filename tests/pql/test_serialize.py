"""Tests for the shared result serializer: canonical order, JSON shape,
and pagination cursors (satellite of the serve subsystem)."""

import json

import pytest

from repro import Ariadne, SSSP
from repro.core import queries as Q
from repro.graph.generators import web_graph, with_random_weights
from repro.pql.serialize import (
    canonical_json,
    decode_cursor,
    encode_cursor,
    flatten_result,
    jsonable_row,
    jsonable_value,
    ordered_rows,
    paginate,
    result_digest,
    result_to_dict,
    row_sort_key,
)
from repro.runtime.offline import run_layered, run_naive


@pytest.fixture(scope="module")
def capture():
    graph = with_random_weights(
        web_graph(50, avg_degree=4, target_diameter=7, seed=23), seed=23
    )
    return Ariadne(graph, SSSP(source=0)).capture()


def lineage_params(store):
    """A (alpha, sigma) pair with a real backward lineage: the smallest
    vertex updated at the last superstep."""
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


@pytest.fixture(scope="module")
def result(capture):
    return run_layered(
        capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
        params=lineage_params(capture.store),
    )


class TestCanonicalOrder:
    def test_rows_are_sorted_by_repr(self, result):
        for relation in result.relations():
            rows = result.rows(relation)
            assert rows == sorted(rows, key=row_sort_key)

    def test_ordered_rows_handles_mixed_types(self):
        rows = [(2, "b"), (1, 0.5), (1, 10), ("a", 1)]
        out = ordered_rows(rows)
        assert out == sorted(rows, key=repr)
        # Deterministic: same input in any order, same output.
        assert ordered_rows(reversed(rows)) == out

    def test_indexed_and_scan_order_agree(self, capture):
        """The pinned total order holds across access paths (no-index
        scan vs hash probes) and across evaluation drivers."""
        params = lineage_params(capture.store)
        runs = [
            run_layered(capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                        params=params, use_index=True),
            run_layered(capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                        params=params, use_index=False),
            run_naive(capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                      params=params, use_index=True),
            run_naive(capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
                      params=params, use_index=False),
        ]
        baseline = result_to_dict(runs[0])
        baseline.pop("mode")
        for other in runs[1:]:
            doc = result_to_dict(other)
            doc.pop("mode")
            assert doc == baseline


class TestJsonShape:
    def test_jsonable_value_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert jsonable_value(value) == value

    def test_jsonable_value_recurses_and_degrades(self):
        assert jsonable_value((1, (2.0, "a"))) == [1, [2.0, "a"]]
        assert jsonable_value({1}) == repr({1})

    def test_jsonable_row(self):
        assert jsonable_row((1, 2.5, "v")) == [1, 2.5, "v"]

    def test_result_to_dict_is_json_safe_and_deterministic(self, result):
        doc = result_to_dict(result)
        encoded = canonical_json(doc)
        assert json.loads(encoded) == doc
        assert canonical_json(result_to_dict(result)) == encoded
        assert set(doc) == {"mode", "derivations", "supersteps", "relations"}
        for rel in doc["relations"].values():
            assert rel["count"] == len(rel["rows"])

    def test_no_timings_in_result_dict(self, result):
        text = canonical_json(result_to_dict(result))
        assert "wall_seconds" not in text

    def test_digest_tracks_content(self, result):
        assert result_digest(result) == result_digest(result)
        assert len(result_digest(result)) == 16


class TestCursors:
    def test_round_trip(self):
        cursor = encode_cursor(42, "abcd" * 4)
        assert decode_cursor(cursor) == (42, "abcd" * 4)

    @pytest.mark.parametrize("garbage", [
        "", "!!!", "aGVsbG8=",  # valid base64, not JSON-cursor shaped
        encode_cursor(0, "d")[:-4] + "AAAA",
    ])
    def test_garbage_rejected(self, garbage):
        with pytest.raises(ValueError):
            decode_cursor(garbage)

    def test_negative_offset_rejected(self):
        import base64
        payload = canonical_json({"v": 1, "offset": -1, "digest": "d"})
        cursor = base64.urlsafe_b64encode(payload.encode()).decode()
        with pytest.raises(ValueError):
            decode_cursor(cursor)


class TestPaginate:
    def test_walk_covers_all_rows_in_order(self, result):
        flat = flatten_result(result)
        assert flat, "fixture query should produce rows"
        seen = []
        cursor = None
        while True:
            page = paginate(result, 3, cursor)
            assert page["total_rows"] == len(flat)
            seen.extend((rel, tuple(map(tuple_safe, row)))
                        for rel, row in page["rows"])
            if page["next_cursor"] is None:
                break
            cursor = page["next_cursor"]
        assert len(seen) == len(flat)
        assert [list(row) for _rel, row in flat] == \
            [[unwrap(v) for v in row] for _rel, row in seen]

    def test_stale_cursor_raises(self, result, capture):
        cursor = paginate(result, 2)["next_cursor"]
        other = run_layered(
            capture.store, Q.BACKWARD_LINEAGE_FULL_QUERY,
            params={"alpha": 0, "sigma": 0},
        )
        with pytest.raises(ValueError, match="stale"):
            paginate(other, 2, cursor)

    def test_nonpositive_limit_raises(self, result):
        with pytest.raises(ValueError, match="limit"):
            paginate(result, 0)

    def test_last_page_has_no_cursor(self, result):
        total = len(flatten_result(result))
        page = paginate(result, total)
        assert page["next_cursor"] is None
        assert len(page["rows"]) == total


def tuple_safe(value):
    return tuple(value) if isinstance(value, list) else value


def unwrap(value):
    return list(value) if isinstance(value, tuple) else value
