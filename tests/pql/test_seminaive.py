"""Differential tests: the standalone semi-naive evaluator vs the
plan-based distributed evaluators."""

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.graph.generators import web_graph, with_random_weights
from repro.pql.parser import parse
from repro.pql.seminaive import evaluate_seminaive, store_to_facts
from repro.pql.udf import FunctionRegistry
from repro.runtime.offline import run_reference
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(100, avg_degree=5, target_diameter=8, seed=121), seed=121
    )


@pytest.fixture(scope="module")
def store(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


def seminaive_result(store, graph, src, functions=None, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    facts = store_to_facts(store, graph)
    return evaluate_seminaive(program, facts, functions)


class TestBasics:
    def test_transitive_closure(self):
        program = parse(
            "t(X, Y) :- e(X, Y)."
            "t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        facts = evaluate_seminaive(
            program, {"e": [(0, 1), (1, 2), (2, 3)]}
        )
        assert facts["t"] == {
            (0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3),
        }

    def test_naive_flag_same_answer(self):
        program = parse(
            "t(X, Y) :- e(X, Y)."
            "t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        edb = {"e": [(i, i + 1) for i in range(8)]}
        fast = evaluate_seminaive(program, edb)
        slow = evaluate_seminaive(program, edb, naive=True)
        assert fast["t"] == slow["t"]

    def test_negation(self):
        program = parse(
            "covered(X, X) :- e(X, Y)."
            "root(X, X) :- e(X, Y), !incoming(X, X)."
            "incoming(Y, Y) :- e(X, Y)."
        )
        facts = evaluate_seminaive(program, {"e": [(0, 1), (1, 2)]})
        assert facts["root"] == {(0, 0)}

    def test_aggregates(self):
        program = parse("deg(X, count(Y)) :- e(X, Y).")
        facts = evaluate_seminaive(
            program, {"e": [(0, 1), (0, 2), (1, 2)]}
        )
        assert facts["deg"] == {(0, 2), (1, 1)}

    def test_binding_comparison_and_udf(self):
        program = parse("big(X, Z) :- e(X, Y), Z = Y * 2, gt3(Z).")
        funcs = FunctionRegistry({"gt3": lambda z: z > 3})
        facts = evaluate_seminaive(
            program, {"e": [(0, 1), (0, 3)]}, funcs
        )
        assert facts["big"] == {(0, 6)}


class TestDifferential:
    """The two independently-written evaluators must agree."""

    def _compare(self, store, wgraph, src, udfs=None, **params):
        functions = FunctionRegistry(udfs)
        expected = run_reference(
            store, src, wgraph, params or None, udfs
        )
        actual = seminaive_result(store, wgraph, src, functions, **params)
        program = parse(src)
        for pred in {r.head.predicate for r in program.rules}:
            assert (
                sorted(actual.get(pred, set()), key=repr)
                == expected.rows(pred)
            ), pred

    def test_query5(self, store, wgraph):
        self._compare(store, wgraph, Q.SSSP_WCC_UPDATE_CHECK_QUERY)

    def test_query6(self, store, wgraph):
        self._compare(store, wgraph, Q.SSSP_WCC_STABILITY_QUERY)

    def test_apt(self, store, wgraph):
        self._compare(
            store, wgraph, Q.APT_QUERY,
            udfs=Q.apt_udfs(SSSP(source=0)), eps=0.1,
        )

    def test_forward_lineage(self, store, wgraph):
        self._compare(
            store, wgraph, Q.CAPTURE_FWD_LINEAGE_QUERY, source=0
        )

    def test_backward_lineage(self, store, wgraph):
        sigma = store.max_superstep
        alpha = min(x for x, i in store.rows("superstep") if i == sigma)
        self._compare(
            store, wgraph, Q.BACKWARD_LINEAGE_FULL_QUERY,
            alpha=alpha, sigma=sigma,
        )

    def test_query4(self, store, wgraph):
        self._compare(store, wgraph, Q.PAGERANK_CHECK_QUERY)
