"""Tests for the history-window analysis and online pruning."""

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.graph.generators import web_graph, with_random_weights
from repro.pql.analysis import compile_query, relation_windows
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.runtime.online import run_online


def windows_of(src, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return relation_windows(compile_query(program, functions=funcs))


class TestWindowAnalysis:
    def test_anchored_scan_is_window_zero(self):
        w = windows_of("p(X, I) :- receive_message(X, Y, M, I).")
        assert w == {"receive_message": 0}

    def test_arithmetic_offset(self):
        w = windows_of(
            "p(X, I) :- receive_message(X, Y, M, I), "
            "superstep(X, J), J = I - 2."
        )
        assert w["superstep"] == 2

    def test_future_offsets_clamp_to_zero(self):
        w = windows_of(
            "p(X, I) :- superstep(X, I), superstep(X, J), J = I + 0."
        )
        assert w["superstep"] == 0

    def test_unbounded_via_evolution(self):
        w = windows_of(
            "p(X, I) :- value(X, D1, I), value(X, D2, J), "
            "evolution(X, J, I)."
        )
        assert w["value"] is None
        assert w["evolution"] == 0

    def test_constant_superstep_is_unbounded(self):
        # A fact pinned to an absolute superstep can be joined against at
        # every later anchor (e.g. with facts that arrive much later), so
        # the analysis must not prune it.
        w = windows_of("p(X, D) :- value(X, D, I), I = 0.")
        assert w["value"] is None

    def test_anchored_seed_rule_is_bounded(self):
        # ... but when the constant-constrained variable IS the anchor,
        # the anchor offset (0) applies and pruning is sound.
        w = windows_of(
            "seed(X, D, I) :- value(X, D, I), superstep(X, I), I = 0."
        )
        assert w["value"] == 0

    def test_apt_query_windows(self):
        w = windows_of(Q.APT_QUERY, eps=0.1)
        assert w["value"] is None
        assert w["superstep"] == 0
        assert w["receive_message"] == 0
        assert w["evolution"] == 0

    def test_rule_without_anchor_is_unbounded(self):
        # head has no superstep attribute: every scan is unbounded
        w = windows_of("p(X) :- superstep(X, I), I > 3.")
        assert w["superstep"] is None


class TestPruningEndToEnd:
    @pytest.fixture(scope="class")
    def wgraph(self):
        return with_random_weights(
            web_graph(200, avg_degree=6, target_diameter=10, seed=91),
            seed=91,
        )

    def test_results_identical_with_and_without_pruning(self, wgraph):
        from repro.engine.config import EngineConfig
        from repro.engine.engine import PregelEngine
        from repro.pql.udf import FunctionRegistry
        from repro.runtime.online import OnlineQueryProgram

        analytic = SSSP(source=0)
        funcs = FunctionRegistry(Q.apt_udfs(analytic))
        program = parse(Q.APT_QUERY).bind(eps=0.1)
        compiled = compile_query(program, functions=funcs)

        results = {}
        for prune in (True, False):
            wrapper = OnlineQueryProgram(
                analytic.make_program(), compiled, funcs, wgraph,
                value_projector=analytic.provenance_value,
                prune_history=prune,
            )
            wrapper.run_setup()
            engine = PregelEngine(wgraph, config=EngineConfig(use_combiner=False))
            engine.run(wrapper)
            results[prune] = {
                rel: sorted(wrapper.db.derived.all_rows(rel), key=repr)
                for rel in ("change", "no_execute", "safe", "unsafe")
            }
            if prune:
                assert wrapper.pruned_rows > 0

        assert results[True] == results[False]

    def test_pruning_reduces_transient_memory(self, wgraph):
        analytic = SSSP(source=0)
        result = run_online(
            wgraph, analytic, Q.APT_QUERY, params={"eps": 0.1},
            udfs=Q.apt_udfs(analytic),
        )
        assert result.query.stats["pruned_rows"] > 0
        assert (
            result.query.stats["transient_rows"]
            < result.query.stats["pruned_rows"]
        )
