"""Unit tests for the PQL tokenizer."""

import pytest

from repro.errors import PQLSyntaxError
from repro.pql.lexer import EOF, IDENT, NUMBER, OP, PARAM, PUNCT, STRING, VAR, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_simple_rule(self):
        toks = kinds("p(X) :- q(X).")
        assert toks == [
            (IDENT, "p"), (PUNCT, "("), (VAR, "X"), (PUNCT, ")"),
            (PUNCT, ":-"),
            (IDENT, "q"), (PUNCT, "("), (VAR, "X"), (PUNCT, ")"),
            (PUNCT, "."),
        ]

    def test_eof_appended(self):
        assert tokenize("")[-1].kind == EOF

    def test_variables_vs_identifiers(self):
        toks = kinds("Abc abc _x X1")
        assert toks == [(VAR, "Abc"), (IDENT, "abc"), (VAR, "_x"), (VAR, "X1")]

    def test_numbers(self):
        toks = kinds("1 2.5 1e3 2.5e-2 .5")
        assert [t for t, _ in toks] == [NUMBER] * 5
        assert [x for _, x in toks] == ["1", "2.5", "1e3", "2.5e-2", ".5"]

    def test_number_then_rule_dot(self):
        # "I = 0." must not swallow the rule terminator into the number.
        toks = kinds("0.")
        assert toks == [(NUMBER, "0"), (PUNCT, ".")]

    def test_strings(self):
        assert kinds("'ab' \"cd\"") == [(STRING, "ab"), (STRING, "cd")]

    def test_string_escape(self):
        assert kinds(r"'a\'b'") == [(STRING, "a'b")]

    def test_unterminated_string(self):
        with pytest.raises(PQLSyntaxError):
            tokenize("'abc")

    def test_params(self):
        assert kinds("$eps $source_2") == [(PARAM, "eps"), (PARAM, "source_2")]

    def test_bare_dollar_rejected(self):
        with pytest.raises(PQLSyntaxError):
            tokenize("$ x")

    def test_operators(self):
        toks = kinds("= == != <> < <= > >= + - * / !")
        texts = [x for _, x in toks]
        # <> normalizes to !=
        assert texts == ["=", "==", "!=", "!=", "<", "<=", ">", ">=",
                         "+", "-", "*", "/", "!"]

    def test_not_keyword_becomes_bang(self):
        assert kinds("not p") == [(OP, "!"), (IDENT, "p")]

    def test_comments(self):
        src = "p(X). % trailing\n# full line\n// slashes\nq(X)."
        idents = [x for k, x in kinds(src) if k == IDENT]
        assert idents == ["p", "q"]

    def test_line_and_column_tracking(self):
        toks = tokenize("p(X).\n  q(Y).")
        q = [t for t in toks if t.text == "q"][0]
        assert (q.line, q.column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(PQLSyntaxError) as info:
            tokenize("p(X) :- q(X) @ r(X).")
        assert "@" in str(info.value)
