"""Randomized differential testing: the plan-based evaluator and the
standalone semi-naive interpreter must agree on randomly composed programs
over randomly generated provenance stores.

Programs are assembled from parameterized rule templates (filters, joins,
negation, recursion through receive/send guards, aggregation) with random
constants — every combination is safe and stratified by construction, but
the *plans* differ wildly, which is the point.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pql.parser import parse
from repro.pql.seminaive import evaluate_seminaive, store_to_facts
from repro.pql.udf import FunctionRegistry
from repro.provenance.store import ProvenanceStore
from repro.runtime.offline import run_reference

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_store(draw):
    rng = random.Random(draw(st.integers(0, 100_000)))
    n = draw(st.integers(3, 8))
    supersteps = draw(st.integers(2, 5))
    store = ProvenanceStore()
    last_active = {}
    for s in range(supersteps):
        for v in range(n):
            if s == 0 or rng.random() < 0.7:
                store.add("superstep", (v, s))
                store.add("value", (v, float(rng.randint(0, 4)), s))
                if v in last_active:
                    store.add("evolution", (v, last_active[v], s))
                last_active[v] = s
        for v in range(n):
            if rng.random() < 0.6 and s + 1 < supersteps:
                target = rng.randrange(n)
                m = float(rng.randint(0, 3))
                store.add("send_message", (v, target, m, s))
                store.add("receive_message", (target, v, m, s + 1))
    return store


@st.composite
def random_program(draw):
    """Compose 2-5 template rules with random constants."""
    rng = random.Random(draw(st.integers(0, 100_000)))
    pieces = []
    c1 = rng.randint(0, 4)
    c2 = rng.randint(0, 3)
    pieces.append(f"base(X, D, I) :- value(X, D, I), D >= {float(c1)}.")
    choices = draw(
        st.lists(
            st.sampled_from(
                ["filter", "join", "negation", "forward", "backward",
                 "aggregate", "arith"]
            ),
            min_size=1,
            max_size=4,
        )
    )
    for kind in choices:
        if kind == "filter" and "act(" not in "".join(pieces):
            pieces.append(f"act(X, I) :- superstep(X, I), I > {c2 % 3}.")
        elif kind == "join" and "joined(" not in "".join(pieces):
            pieces.append(
                "joined(X, D, I) :- base(X, D, I), superstep(X, I)."
            )
        elif kind == "negation" and "quiet(" not in "".join(pieces):
            pieces.append(
                "got(X, I) :- receive_message(X, Y, M, I)."
                "quiet(X, I) :- superstep(X, I), !got(X, I)."
            )
        elif kind == "forward" and "reach(" not in "".join(pieces):
            pieces.append(
                f"reach(X, I) :- superstep(X, I), I = 0, X = {rng.randint(0, 2)}."
                "reach(X, I) :- receive_message(X, Y, M, I), reach(Y, J), "
                "J < I."
            )
        elif kind == "backward" and "trace(" not in "".join(pieces):
            pieces.append(
                f"trace(X, I) :- superstep(X, I), I = {rng.randint(1, 3)}."
                "trace(X, I) :- send_message(X, Y, M, I), trace(Y, J), "
                "J = I + 1."
            )
        elif kind == "aggregate" and "cnt(" not in "".join(pieces):
            pieces.append("cnt(X, count(I)) :- base(X, D, I).")
        elif kind == "arith" and "shifted(" not in "".join(pieces):
            pieces.append(
                f"shifted(X, D + {c2}, I) :- base(X, D, I), "
                f"D < {float(c1 + 2)}."
            )
    return "".join(pieces)


class TestDifferentialFuzz:
    @given(random_store(), random_program())
    @SLOW
    def test_evaluators_agree(self, store, src):
        program = parse(src)
        expected = run_reference(store, src)
        functions = FunctionRegistry()
        actual = evaluate_seminaive(
            program, store_to_facts(store), functions
        )
        for pred in {r.head.predicate for r in program.rules}:
            assert (
                sorted(actual.get(pred, set()), key=repr)
                == expected.rows(pred)
            ), f"{pred} differs for program:\n{src}"

    @given(random_store(), random_program())
    @SLOW
    def test_vectorized_agrees_over_sealed_columnar(self, store, src):
        """The batch-kernel evaluator over a sealed ARSC store returns the
        same rows as the reference interpreter and as its own indexed and
        scan row paths — random programs, including ones that partially
        fall back (aggregates, negation, recursion)."""
        import shutil
        import tempfile

        from repro.errors import PQLCompatibilityError
        from repro.provenance.spill import SpillManager
        from repro.runtime.offline import (
            run_layered_from_spill,
            run_naive_from_spill,
        )

        expected = run_reference(store, src)
        directory = tempfile.mkdtemp(prefix="vecfuzz-")
        try:
            writer = SpillManager(store, directory=directory,
                                  format="columnar")
            writer.seal_all()
            writer.write_manifest()
            spill = SpillManager.open(directory)
            runs = []
            try:
                runs.append(run_layered_from_spill(spill, src))
                runs.append(run_layered_from_spill(spill, src,
                                                   vectorize=False))
            except PQLCompatibilityError:
                pass  # mixed-direction composition: layered refuses
            runs.append(run_naive_from_spill(spill, src))
            runs.append(run_naive_from_spill(spill, src, use_index=False,
                                             vectorize=False))
            for result in runs:
                for rel in expected.relations():
                    assert result.rows(rel) == expected.rows(rel), (
                        f"{rel} differs ({result.stats['evaluator']}) for "
                        f"program:\n{src}"
                    )
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @given(random_store(), random_program())
    @SLOW
    def test_layered_and_naive_agree_on_directed_programs(self, store, src):
        from repro.errors import PQLCompatibilityError
        from repro.runtime.offline import run_layered, run_naive

        expected = run_reference(store, src)
        try:
            layered = run_layered(store, src)
        except PQLCompatibilityError:
            return  # mixed-direction composition: layered correctly refuses
        naive = run_naive(store, src)
        for rel in expected.relations():
            assert layered.rows(rel) == expected.rows(rel), rel
            assert naive.rows(rel) == expected.rows(rel), rel
