"""Unit tests for the function registry and builtins."""

import math

import pytest

from repro.errors import PQLSemanticError
from repro.pql.udf import BUILTIN_FUNCTIONS, FunctionRegistry


class TestBuiltins:
    def test_outside(self):
        outside = BUILTIN_FUNCTIONS["outside"]
        assert outside(6.0, 0.0, 5.0)
        assert outside(-0.1, 0.0, 5.0)
        assert not outside(0.0, 0.0, 5.0)
        assert not outside(5.0, 0.0, 5.0)

    def test_within(self):
        within = BUILTIN_FUNCTIONS["within"]
        assert within(2.5, 0.0, 5.0)
        assert not within(5.1, 0.0, 5.0)

    def test_elem(self):
        elem = BUILTIN_FUNCTIONS["elem"]
        assert elem((4.0, 3.5, 0.5), 2) == 0.5
        assert elem("abc", 1) == "b"

    def test_math_helpers(self):
        assert BUILTIN_FUNCTIONS["sqrt"](4.0) == 2.0
        assert BUILTIN_FUNCTIONS["abs"](-2) == 2
        assert BUILTIN_FUNCTIONS["is_inf"](math.inf)
        assert BUILTIN_FUNCTIONS["is_finite"](1.0)
        assert BUILTIN_FUNCTIONS["min2"](1, 2) == 1
        assert BUILTIN_FUNCTIONS["max2"](1, 2) == 2


class TestRegistry:
    def test_builtins_preloaded(self):
        reg = FunctionRegistry()
        assert "outside" in reg
        assert reg.get("abs")(-1) == 1

    def test_register_udf(self):
        reg = FunctionRegistry({"double": lambda x: 2 * x})
        assert reg.get("double")(3) == 6

    def test_udf_overrides_builtin(self):
        reg = FunctionRegistry({"abs": lambda x: "custom"})
        assert reg.get("abs")(1) == "custom"
        # but the shared table is untouched
        assert FunctionRegistry().get("abs")(-1) == 1

    def test_non_callable_rejected(self):
        with pytest.raises(PQLSemanticError):
            FunctionRegistry({"bad": 42})

    def test_unknown_function(self):
        with pytest.raises(PQLSemanticError):
            FunctionRegistry().get("nope")
