"""Property test: pretty-printing a PQL AST and re-parsing it is identity.

Random programs are generated directly as ASTs (not text), printed with the
AST's ``__str__`` and parsed back; the two ASTs must match structurally.
This pins down the printer/parser pair and catches precedence and lexing
regressions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pql.ast import (
    Aggregate,
    Atom,
    AtomLiteral,
    BinOp,
    Comparison,
    Const,
    FuncCall,
    Param,
    Program,
    Rule,
    Var,
)
from repro.pql.parser import parse

var_names = st.sampled_from(["X", "Y", "I", "J", "D1", "W"])
pred_names = st.sampled_from(["p", "q", "r", "superstep", "value"])
func_names = st.sampled_from(["abs", "udf_diff", "elem"])
param_names = st.sampled_from(["eps", "source"])

constants = st.one_of(
    st.integers(-100, 100).map(Const),
    # floats whose repr round-trips through the lexer (no inf/nan)
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ).map(Const),
    st.sampled_from(["a", "msg", "x1"]).map(Const),
)

variables = var_names.map(Var)
params = param_names.map(Param)

terms = st.recursive(
    st.one_of(variables, constants, params),
    lambda inner: st.one_of(
        st.tuples(st.sampled_from("+-*/"), inner, inner).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        st.tuples(func_names, st.lists(inner, min_size=1, max_size=2)).map(
            lambda t: FuncCall(t[0], tuple(t[1]))
        ),
    ),
    max_leaves=6,
)

atoms = st.tuples(
    pred_names, st.lists(terms, min_size=1, max_size=4)
).map(lambda t: Atom(t[0], tuple(t[1])))

comparisons = st.tuples(
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), terms, terms
).map(lambda t: Comparison(t[0], t[1], t[2]))

literals = st.one_of(
    st.tuples(atoms, st.booleans()).map(lambda t: AtomLiteral(t[0], t[1])),
    comparisons,
)

head_terms = st.one_of(
    terms,
    st.tuples(
        st.sampled_from(["count", "sum", "min", "max", "avg"]), variables
    ).map(lambda t: Aggregate(t[0], t[1])),
)

heads = st.tuples(
    pred_names, st.lists(head_terms, min_size=1, max_size=3)
).map(lambda t: Atom(t[0], tuple(t[1])))

rules = st.tuples(heads, st.lists(literals, max_size=4)).map(
    lambda t: Rule(t[0], tuple(t[1]))
)

programs = st.lists(rules, min_size=1, max_size=4).map(
    lambda rs: Program(tuple(rs))
)


class TestRoundTrip:
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_print_parse_identity(self, program):
        reparsed = parse(str(program))
        assert reparsed.rules == program.rules

    @given(rules)
    @settings(max_examples=200, deadline=None)
    def test_rule_roundtrip(self, rule):
        reparsed = parse(str(rule))
        assert reparsed.rules == (rule,)
