"""Unit tests for hash-index join acceleration (repro.pql.index) and its
storage integrations: candidate narrowing, incremental maintenance, the
small-partition threshold, invalidation on pruning, the shared empty-slice
pin, the readonly store->facts views, and the use_index switches."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.core import queries as Q
from repro.engine.config import EngineConfig
from repro.graph.generators import web_graph
from repro.pql.analysis import compile_query
from repro.pql.eval import TupleStore
from repro.pql.explain import explain
from repro.pql.index import EMPTY_ROWS, MIN_INDEX_ROWS, FactsIndex, RowIndex
from repro.pql.parser import parse
from repro.pql.plan import ScanStep
from repro.pql.seminaive import evaluate_seminaive, store_to_facts
from repro.provenance.store import _EMPTY_ROWS, ProvenanceStore
from repro.runtime.offline import run_layered, run_reference
from repro.runtime.online import run_online

DEPTH = MIN_INDEX_ROWS * 2  # comfortably above the indexing threshold


class TestRowIndex:
    def test_probe_narrows_to_bucket(self):
        log = [(i, i % 3, "x") for i in range(12)]
        idx = RowIndex()
        assert sorted(idx.probe(log, (1,), (2,))) == sorted(
            row for row in log if row[1] == 2
        )

    def test_miss_returns_shared_empty(self):
        idx = RowIndex()
        assert idx.probe([(0, 1)], (1,), (99,)) is EMPTY_ROWS

    def test_incremental_fold_sees_appended_rows(self):
        log = [(0, "a"), (1, "b")]
        idx = RowIndex()
        assert list(idx.probe(log, (1,), ("a",))) == [(0, "a")]
        log.append((2, "a"))
        assert sorted(idx.probe(log, (1,), ("a",))) == [(0, "a"), (2, "a")]

    def test_rows_too_short_for_pattern_skipped(self):
        log = [(0,), (1, "a"), (2, "a", True)]
        idx = RowIndex()
        # arity-1 rows can never match an arity>=2 scan; they are skipped,
        # not an error
        assert sorted(idx.probe(log, (1,), ("a",))) == [
            (1, "a"), (2, "a", True),
        ]

    def test_patterns_are_independent(self):
        log = [(0, "a", 1), (1, "a", 2), (2, "b", 1)]
        idx = RowIndex()
        by_name = idx.probe(log, (1,), ("a",))
        by_time = idx.probe(log, (2,), (1,))
        assert sorted(by_name) == [(0, "a", 1), (1, "a", 2)]
        assert sorted(by_time) == [(0, "a", 1), (2, "b", 1)]


class TestFactsIndex:
    def test_below_threshold_declines(self):
        idx = FactsIndex()
        rows = {(i, "a") for i in range(MIN_INDEX_ROWS - 1)}
        assert idx.probe("r", rows, (1,), ("a",)) is None
        assert "r" not in idx.logs  # no snapshot taken

    def test_snapshot_and_extend(self):
        idx = FactsIndex()
        rows = {(i, i % 2) for i in range(DEPTH)}
        idx.extend("r", [(99, 0)])  # no-op before the first snapshot
        hit = idx.probe("r", rows, (1,), (0,))
        assert set(hit) == {row for row in rows if row[1] == 0}
        idx.extend("r", [(100, 0), (101, 1)])
        assert (100, 0) in set(idx.probe("r", rows, (1,), (0,)))
        assert (100, 0) not in set(idx.probe("r", rows, (1,), (1,)))


class TestTupleStorePartitions:
    def _filled(self, n=DEPTH):
        ts = TupleStore()
        for i in range(n):
            ts.add("r", "v", (i, i % 4))
        return ts

    def test_small_partition_declines(self):
        ts = self._filled(MIN_INDEX_ROWS - 1)
        assert ts.probe("r", "v", (1,), (0,)) is None

    def test_large_partition_narrows(self):
        ts = self._filled()
        hit = ts.probe("r", "v", (1,), (2,))
        assert sorted(hit) == [(i, 2) for i in range(2, DEPTH, 4)]

    def test_missing_partition_is_provably_empty(self):
        ts = self._filled()
        assert ts.probe("r", "nobody", (1,), (0,)) == ()

    def test_group_partitions_unindexable(self):
        ts = TupleStore()
        for i in range(DEPTH):
            ts.set_group("agg", "v", ("k",), ("k", i))
        # replaced rows linger in the insertion log; an index over it
        # would resurrect them, so aggregate partitions always scan
        assert ts.probe("agg", "v", (0,), ("k",)) is None

    def test_prune_invalidates_index(self):
        ts = TupleStore()
        for i in range(DEPTH * 2):
            ts.add_timed("r", "v", (i, i % 4), i)
        part = ts.partition("r", "v")
        assert ts.probe("r", "v", (1,), (3,)) is not None  # index built
        removed = part.prune_older_than(DEPTH)
        assert removed == DEPTH
        hit = ts.probe("r", "v", (1,), (3,))
        assert hit is not None  # rebuilt from the compacted log
        assert set(hit) == {(i, 3) for i in range(DEPTH, DEPTH * 2)
                            if i % 4 == 3}


@pytest.fixture()
def deep_store():
    store = ProvenanceStore()
    for i in range(DEPTH):
        store.add("value", (0, float(i), i))
        store.add("superstep", (0, i))
    return store


class TestProvenanceStorePartitions:
    def test_probe_narrows(self, deep_store):
        hit = deep_store.probe("value", 0, (2,), (5,))
        assert hit is not None
        assert set(hit) == {(0, 5.0, 5)}

    def test_small_partition_declines(self, deep_store):
        deep_store.add("send_message", (0, 1, "m", 0))
        assert deep_store.probe("send_message", 0, (1,), (1,)) is None

    def test_missing_partition_is_provably_empty(self, deep_store):
        assert deep_store.probe("value", 99, (2,), (5,)) == ()

    def test_miss_slices_share_one_frozenset(self, deep_store):
        # Partition/slice misses are the common case on sparse relations;
        # they must all return the one immutable empty set, not allocate.
        miss = deep_store.partition_at("value", 0, 10_000)
        assert miss is _EMPTY_ROWS
        assert deep_store.partition("value", 77) is _EMPTY_ROWS
        assert deep_store.partition_at("value", 77, 0) is _EMPTY_ROWS
        assert isinstance(miss, frozenset)
        with pytest.raises(AttributeError):
            miss.add((1, 2.0, 3))


@pytest.fixture(scope="module")
def graph():
    return web_graph(40, avg_degree=4, target_diameter=6, seed=7)


@pytest.fixture(scope="module")
def capture(graph):
    return run_online(
        graph, PageRank(num_supersteps=24), Q.CAPTURE_FULL_QUERY,
        capture=True,
    ).store


class TestReadonlyFacts:
    def test_views_match_copied_facts(self, capture, graph):
        copied = store_to_facts(capture, graph)
        views = store_to_facts(capture, graph, readonly=True)
        assert set(copied) == set(views)
        for rel in copied:
            assert set(views[rel]) == set(copied[rel]), rel
            assert len(views[rel]) == len(copied[rel]), rel
        some_row = next(iter(copied["value"]))
        assert some_row in views["value"]
        assert ("no", "such", "row") not in views["value"]

    def test_seminaive_over_views(self, capture, graph):
        program = parse(Q.SSSP_WCC_STABILITY_QUERY)
        from_views = evaluate_seminaive(
            program, store_to_facts(capture, graph, readonly=True)
        )
        from_copies = evaluate_seminaive(
            program, store_to_facts(capture, graph)
        )
        assert from_views == from_copies


class TestPlanProbes:
    def test_bound_scans_carry_probe_patterns(self):
        cq = compile_query(
            parse(Q.BACKWARD_LINEAGE_FULL_QUERY).bind(alpha=0, sigma=5)
        )
        probes = [
            s.probe
            for rule in cq.rules
            for s in rule.anchored_plan.steps
            if isinstance(s, ScanStep) and s.probe
        ]
        assert probes, "no anchored scan carries a binding pattern"

    def test_aggregate_rules_never_probe(self):
        # sum/avg accumulation is enumeration-order-sensitive; aggregate
        # rule bodies stay on the scan path so indexed and scan runs stay
        # byte-identical
        cq = compile_query(parse(
            "s(X, I, sum(M)) :- receive_message(X, Y, M, I), "
            "superstep(X, I)."
        ))
        for rule in cq.rules:
            for plan in (rule.anchored_plan, rule.located_plan,
                         rule.free_plan):
                if plan is None:
                    continue
                assert all(
                    not s.probe for s in plan.steps
                    if isinstance(s, ScanStep)
                )

    def test_explain_shows_probe_positions(self):
        cq = compile_query(
            parse(Q.BACKWARD_LINEAGE_FULL_QUERY).bind(alpha=0, sigma=5)
        )
        assert "hash-probe(" in explain(cq, verbose=True)

    def test_explain_reports_observed_usage(self):
        cq = compile_query(
            parse(Q.BACKWARD_LINEAGE_FULL_QUERY).bind(alpha=0, sigma=5)
        )
        text = explain(cq, index_stats={"index_probes": 3,
                                        "index_scans": 1})
        assert "observed index usage" in text
        assert "3 hash probe(s)" in text


class TestUseIndexSwitch:
    def _params(self, capture):
        sigma = capture.max_superstep
        alpha = min(x for x, i in capture.rows("superstep") if i == sigma)
        return {"alpha": alpha, "sigma": sigma}

    def test_layered_identical_with_and_without(self, capture, graph):
        params = self._params(capture)
        indexed = run_layered(
            capture, Q.BACKWARD_LINEAGE_FULL_QUERY, graph, params
        )
        scanned = run_layered(
            capture, Q.BACKWARD_LINEAGE_FULL_QUERY, graph, params,
            use_index=False,
        )
        assert indexed.as_dict() == scanned.as_dict()
        assert indexed.stats["use_index"] is True
        assert indexed.stats["index_probes"] > 0
        assert scanned.stats["use_index"] is False
        assert scanned.stats["index_probes"] == 0

    def test_reference_oracle_never_probes(self, capture, graph):
        result = run_reference(
            capture, Q.BACKWARD_LINEAGE_FULL_QUERY, graph,
            self._params(capture),
        )
        assert result.stats["use_index"] is False
        assert result.stats["index_probes"] == 0

    def test_engine_config_switch(self, graph):
        runs = {}
        for flag in (True, False):
            result = run_online(
                graph, PageRank(num_supersteps=24),
                Q.CAPTURE_BACKWARD_CUSTOM_QUERY, capture=True,
                config=EngineConfig(query_index=flag),
            )
            assert result.query.stats["use_index"] is flag
            if not flag:
                assert result.query.stats["index_probes"] == 0
            runs[flag] = result.query.as_dict()
        assert runs[True] == runs[False]
