"""Randomized differential testing of the hash-index access path: every
evaluator must produce byte-identical results with indexing on and off.

Indexes are candidate-narrowing only — a probe may return any superset of
the matching rows — so any divergence here means an index returned a
*subset*, i.e. silently dropped a matching row. Programs and stores are
drawn from the same generators as test_differential_fuzz, which exercise
joins, negation, recursion and aggregation over randomized captures.
"""

from hypothesis import given

from repro.errors import PQLCompatibilityError
from repro.pql.parser import parse
from repro.pql.seminaive import evaluate_seminaive, store_to_facts
from repro.runtime.offline import run_layered, run_naive
from test_differential_fuzz import SLOW, random_program, random_store


def _facts_equal(indexed, scanned, predicates, src):
    for pred in predicates:
        assert indexed.get(pred, set()) == scanned.get(pred, set()), (
            f"{pred} differs with indexing on vs off for program:\n{src}"
        )


class TestIndexDifferential:
    @given(random_store(), random_program())
    @SLOW
    def test_seminaive_index_on_off_identical(self, store, src):
        program = parse(src)
        facts = store_to_facts(store)
        indexed = evaluate_seminaive(program, facts)
        scanned = evaluate_seminaive(program, facts, use_index=False)
        _facts_equal(
            indexed, scanned,
            {r.head.predicate for r in program.rules}, src,
        )

    @given(random_store(), random_program())
    @SLOW
    def test_drivers_index_on_off_identical(self, store, src):
        try:
            layered_indexed = run_layered(store, src)
        except PQLCompatibilityError:
            layered_indexed = None  # mixed-direction: layered refuses
        if layered_indexed is not None:
            layered_scanned = run_layered(store, src, use_index=False)
            assert (layered_indexed.as_dict()
                    == layered_scanned.as_dict()), src
            assert layered_scanned.stats["index_probes"] == 0
        naive_indexed = run_naive(store, src)
        naive_scanned = run_naive(store, src, use_index=False)
        assert naive_indexed.as_dict() == naive_scanned.as_dict(), src
        assert naive_scanned.stats["index_probes"] == 0
