"""Unit tests for PQL semantic analysis: safety, stratification,
VC-compatibility, direction classification, time/topology inference."""

import pytest

from repro.errors import PQLCompatibilityError, PQLSemanticError
from repro.pql.analysis import (
    DIRECTION_BACKWARD,
    DIRECTION_FORWARD,
    DIRECTION_LOCAL,
    DIRECTION_MIXED,
    compile_query,
)
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.provenance.model import TOPO_EDGE


def compile_src(src, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return compile_query(program, functions=funcs)


class TestValidation:
    def test_unknown_predicate(self):
        with pytest.raises(PQLSemanticError, match="unknown predicate"):
            compile_src("p(X) :- mystery(X).")

    def test_function_resolved_to_boolcall(self):
        cq = compile_src("p(X, I) :- value(X, D, I), udf_diff(D, 0, 1).")
        assert cq.rules[0].body_relations == ("value",)

    def test_builtin_arity_enforced(self):
        with pytest.raises(PQLSemanticError, match="arity"):
            compile_src("p(X) :- value(X, D).")

    def test_idb_arity_consistency(self):
        with pytest.raises(PQLSemanticError, match="inconsistent"):
            compile_src("p(X) :- superstep(X, I). q(X) :- p(X, I), superstep(X, I).")

    def test_head_location_must_be_variable(self):
        with pytest.raises(PQLSemanticError, match="location"):
            compile_src("p(1) :- superstep(X, I).")

    def test_cannot_redefine_static(self):
        with pytest.raises(PQLSemanticError, match="static"):
            compile_src("edge(X, Y) :- superstep(X, Y).")

    def test_cannot_redefine_stream(self):
        with pytest.raises(PQLSemanticError, match="stream"):
            compile_src("send(X, Y, M) :- receive_message(X, Y, M, I).")

    def test_unsafe_head_variable(self):
        with pytest.raises(PQLSemanticError, match="unsafe|unbound"):
            compile_src("p(X, Z) :- superstep(X, I).")

    def test_unsafe_negation(self):
        with pytest.raises(PQLSemanticError):
            compile_src("p(X) :- superstep(X, I), !value(X, D, J).")

    def test_unbound_parameter_rejected(self):
        with pytest.raises(PQLSemanticError, match="parameter"):
            program = parse("p(X) :- value(X, D, I), D < $eps.")
            compile_query(program)


class TestStratification:
    def test_linear_strata(self):
        cq = compile_src(
            "a(X, I) :- superstep(X, I)."
            "b(X, I) :- superstep(X, I), !a(X, I)."
            "c(X, I) :- b(X, I), !a(X, I)."
        )
        by_name = {c.head_predicate: c.stratum for c in cq.rules}
        assert by_name["a"] < by_name["b"] <= by_name["c"]

    def test_positive_recursion_same_stratum(self):
        cq = compile_src(
            "t(X, I) :- superstep(X, I)."
            "t(X, I) :- receive_message(X, Y, M, I), t(Y, J), J < I."
        )
        strata = {c.stratum for c in cq.rules}
        assert strata == {0}

    def test_negative_cycle_rejected(self):
        with pytest.raises(PQLSemanticError, match="stratifiable"):
            compile_src(
                "a(X, I) :- superstep(X, I), !b(X, I)."
                "b(X, I) :- superstep(X, I), !a(X, I)."
            )

    def test_aggregate_pushes_stratum(self):
        cq = compile_src(
            "e(X, I) :- superstep(X, I)."
            "cnt(X, count(I)) :- e(X, I)."
        )
        by_name = {c.head_predicate: c.stratum for c in cq.rules}
        assert by_name["cnt"] > by_name["e"]

    def test_aggregate_over_recursive_self_rejected(self):
        with pytest.raises(PQLSemanticError, match="stratifiable"):
            compile_src("cnt(X, count(I)) :- cnt(X, I), superstep(X, I).")

    def test_mixed_aggregate_definition_rejected(self):
        with pytest.raises(PQLSemanticError, match="mixes"):
            compile_src(
                "d(X, count(Y)) :- edge(X, Y)."
                "d(X, I) :- superstep(X, I)."
            )


class TestDirections:
    def test_local(self):
        cq = compile_src("p(X, I) :- value(X, D, I), superstep(X, I).")
        assert cq.direction == DIRECTION_LOCAL
        assert cq.online_eligible and cq.layered_eligible

    def test_forward(self):
        cq = compile_src(
            "t(X, I) :- superstep(X, I)."
            "t(X, I) :- receive_message(X, Y, M, I), t(Y, J), J < I."
        )
        assert cq.direction == DIRECTION_FORWARD
        assert cq.online_eligible

    def test_backward(self):
        cq = compile_src(
            "t(X, I) :- superstep(X, I)."
            "t(X, I) :- send_message(X, Y, M, I), t(Y, J), J = I + 1."
        )
        assert cq.direction == DIRECTION_BACKWARD
        assert not cq.online_eligible
        assert cq.layered_eligible
        with pytest.raises(PQLCompatibilityError):
            cq.require_online()

    def test_mixed(self):
        cq = compile_src(
            "f(X, I) :- receive_message(X, Y, M, I), t(Y, J), J < I."
            "t(X, I) :- superstep(X, I)."
            "b(X, I) :- send_message(X, Y, M, I), t(Y, J), J = I + 1."
        )
        assert cq.direction == DIRECTION_MIXED
        assert not cq.layered_eligible
        with pytest.raises(PQLCompatibilityError):
            cq.require_layered()

    def test_unguarded_remote_rejected(self):
        # Y's table is read but no message/edge predicate co-locates it.
        with pytest.raises(PQLCompatibilityError, match="VC-compatible"):
            compile_src(
                "t(X, I) :- superstep(X, I)."
                "p(X, I) :- superstep(X, I), t(Y, I)."
            )

    def test_edge_guard_counts_as_backward(self):
        cq = compile_src(
            "t(X, I) :- superstep(X, I)."
            "t(X, I) :- edge(X, Y), t(Y, J), J = I + 1, superstep(X, I)."
        )
        assert cq.direction == DIRECTION_BACKWARD


class TestStaticRules:
    def test_static_closure(self):
        cq = compile_src(
            "has_in(X) :- edge(Y, X)."
            "checked(X, I) :- receive_message(X, Y, M, I), !has_in(X)."
        )
        assert len(cq.static_rules) == 1
        assert cq.static_rules[0].head_predicate == "has_in"
        dynamic = [c.head_predicate for s in cq.strata for c in s]
        assert dynamic == ["checked"]

    def test_static_chain(self):
        cq = compile_src(
            "e2(X, Y) :- edge(X, Y)."
            "sym(X, Y) :- edge(X, Y), e2(X, Y)."
        )
        assert len(cq.static_rules) == 2

    def test_core_relation_head_is_not_static(self):
        cq = compile_src("superstep(X, I) :- superstep(X, I).")
        assert not cq.static_rules
        assert "superstep" in cq.auto_capture


class TestInference:
    def test_time_index_from_body(self):
        cq = compile_src("p(X, D, I) :- value(X, D, I).")
        assert cq.idb_schemas["p"].time_index == 2

    def test_time_propagates_through_arithmetic(self):
        cq = compile_src(
            "p(X, J) :- receive_message(X, Y, M, I), J = I - 1."
        )
        assert cq.idb_schemas["p"].time_index == 1

    def test_no_time_var(self):
        cq = compile_src("p(X, D) :- value(X, D, I), I = 0.")
        assert cq.idb_schemas["p"].time_index is None

    def test_evolution_anchors_on_later_superstep(self):
        cq = compile_src("evolution(X, J, I) :- evolution(X, J, I).")
        rule = cq.rules[0]
        assert rule.time_var == "I"
        assert rule.head_time_index == 2

    def test_topology_inherited_from_edge(self):
        cq = compile_src("prov_edges(X, Y) :- edge(X, Y).")
        assert cq.idb_schemas["prov_edges"].topology == TOPO_EDGE

    def test_no_topology_when_args_reordered(self):
        cq = compile_src("rev(Y, X) :- edge(X, Y).")
        assert cq.idb_schemas["rev"].topology is None

    def test_auto_capture_set(self):
        cq = compile_src(
            "p(X, I) :- value(X, D, I), receive_message(X, Y, M, I)."
        )
        assert cq.auto_capture == {"value", "receive_message"}

    def test_remote_relations(self):
        cq = compile_src(
            "t(X, D, I) :- value(X, D, I)."
            "f(X, I) :- receive_message(X, Y, M, I), t(Y, D, J), J < I."
        )
        assert cq.remote_relations == {"t"}

    def test_stream_usage_blocks_offline(self):
        cq = compile_src("pv(X, V, I) :- vertex_value(X, V), superstep(X, I).")
        assert cq.uses_stream
        with pytest.raises(PQLCompatibilityError):
            cq.require_layered()
