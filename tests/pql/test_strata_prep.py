"""Tests for stratum preparation: topological single-pass vs fixpoint."""

from repro.core import queries as Q
from repro.pql.analysis import compile_query
from repro.pql.eval import _topological, prepare_strata
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry


def prepared_of(src, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return prepare_strata(compile_query(program, functions=funcs).strata)


class TestTopological:
    def test_linear_chain(self):
        assert _topological({"a": set(), "b": {"a"}, "c": {"b"}}) == [
            "a", "b", "c",
        ]

    def test_self_loop_is_cycle(self):
        assert _topological({"a": {"a"}}) is None

    def test_two_cycle(self):
        assert _topological({"a": {"b"}, "b": {"a"}}) is None

    def test_diamond(self):
        order = _topological(
            {"a": set(), "b": {"a"}, "c": {"a"}, "d": {"b", "c"}}
        )
        assert order is not None
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_empty(self):
        assert _topological({}) == []


class TestPreparedStrata:
    def test_apt_needs_no_fixpoint_loop(self):
        prepared = prepared_of(Q.APT_QUERY, eps=0.1)
        assert all(not recursive for _rules, recursive in prepared)
        # the last stratum is ordered no_execute before safe/unsafe
        last_rules, _ = prepared[-1]
        names = [c.head_predicate for c in last_rules]
        assert names.index("no_execute") < names.index("safe")
        assert names.index("no_execute") < names.index("unsafe")

    def test_recursive_query_keeps_fixpoint(self):
        prepared = prepared_of(
            Q.BACKWARD_LINEAGE_FULL_QUERY, alpha=0, sigma=3
        )
        recursive_flags = [r for _rules, r in prepared]
        assert any(recursive_flags)  # back_trace is genuinely recursive

    def test_single_rule_stratum_not_recursive(self):
        prepared = prepared_of("p(X, I) :- superstep(X, I).")
        assert prepared == [(prepared[0][0], False)]

    def test_results_unchanged_by_ordering(self):
        # differential: a dependency-ordered stratum must produce the same
        # fixpoint as brute-force iteration (covered broadly by the mode
        # equivalence suites; this is the targeted regression test)
        from repro.provenance.store import ProvenanceStore
        from repro.runtime.offline import run_reference

        store = ProvenanceStore()
        store.add_all("superstep", [(0, 0), (0, 1), (1, 1)])
        store.add_all("receive_message", [(0, 1, 1.0, 1)])
        result = run_reference(
            store,
            # heads intentionally listed in anti-dependency order
            "c(X, I) :- b(X, I)."
            "b(X, I) :- a(X, I)."
            "a(X, I) :- superstep(X, I), I > 0.",
        )
        assert result.rows("c") == [(0, 1), (1, 1)]
