"""Edge-case tests across the PQL pipeline collected from review."""

import pytest

from repro.errors import PQLSemanticError, PQLSyntaxError
from repro.pql.analysis import compile_query
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.provenance.store import ProvenanceStore
from repro.runtime.offline import run_reference


def compile_src(src, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    return compile_query(program, functions=FunctionRegistry())


class TestParserEdgeCases:
    def test_empty_program(self):
        assert parse("").rules == ()

    def test_comment_only(self):
        assert parse("% nothing here\n# or here\n").rules == ()

    def test_zero_arity_atom_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("p() :- q(X).")

    def test_trailing_comma_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X) :- q(X),.")

    def test_double_negation_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X) :- !!q(X).")

    def test_chained_comparison_rejected(self):
        with pytest.raises(PQLSyntaxError):
            parse("p(X) :- q(X, A), 1 < A < 3.")

    def test_scientific_notation(self):
        rule = parse("p(X) :- q(X, D), D < 1.5e-3.").rules[0]
        assert rule.body[1].right.value == pytest.approx(0.0015)

    def test_keyword_like_predicate_names(self):
        # 'not' is an operator, but 'note'/'notify' are fine predicates
        program = parse("note(X) :- value(X, D, I). notify(X) :- note(X).")
        assert program.head_predicates() == frozenset({"note", "notify"})


class TestAnalysisEdgeCases:
    def test_anonymous_location_rejected(self):
        with pytest.raises(PQLSemanticError, match="location"):
            compile_src("p(X) :- value(_, D, I), superstep(X, I).")

    def test_head_param_after_bind_is_constant(self):
        # a parameter in head position is legal once bound
        cq = compile_src(
            "p(X, $tag) :- superstep(X, I).", tag="hello"
        )
        assert cq.rules[0].head_args[1].value == "hello"

    def test_duplicate_rules_are_harmless(self):
        cq = compile_src(
            "p(X, I) :- superstep(X, I). p(X, I) :- superstep(X, I)."
        )
        assert len(cq.rules) == 2

    def test_self_equality_comparison(self):
        store = ProvenanceStore()
        store.add("superstep", (0, 1))
        result = run_reference(store, "p(X) :- superstep(X, I), I = I.")
        assert result.rows("p") == [(0,)]

    def test_comparison_between_incomparable_types_is_false(self):
        store = ProvenanceStore()
        store.add("value", (0, "text", 1))
        result = run_reference(store, "p(X) :- value(X, D, I), D > 3.0.")
        assert result.rows("p") == []

    def test_negated_function_call(self):
        store = ProvenanceStore()
        store.add("value", (0, 2.0, 1))
        store.add("value", (1, 9.0, 1))
        result = run_reference(
            store, "p(X) :- value(X, D, I), !outside(D, 0.0, 5.0)."
        )
        assert result.rows("p") == [(0,)]


class TestEvaluationEdgeCases:
    def test_empty_store_yields_empty_results(self):
        result = run_reference(
            ProvenanceStore(), "p(X, I) :- superstep(X, I)."
        )
        assert result.rows("p") == []
        assert result.relations() == ["p"]

    def test_string_vertex_ids(self):
        store = ProvenanceStore()
        store.add("superstep", ("alpha", 0))
        store.add("superstep", ("beta", 0))
        store.add("send_message", ("alpha", "beta", "m", 0))
        result = run_reference(
            store,
            "t(X, I) :- superstep(X, I), X = 'beta'."
            "t(X, I) :- send_message(X, Y, M, I), t(Y, J), J = I.",
        )
        assert ("alpha", 0) in result.rows("t")

    def test_duplicate_head_derivations_dedupe(self):
        store = ProvenanceStore()
        store.add("receive_message", (0, 1, 1.0, 2))
        store.add("receive_message", (0, 2, 2.0, 2))
        result = run_reference(
            store, "busy(X, I) :- receive_message(X, Y, M, I)."
        )
        assert result.rows("busy") == [(0, 2)]

    def test_constant_location_head_rejected(self):
        with pytest.raises(PQLSemanticError, match="location"):
            compile_src("marker(0, 1).")
