"""Vectorized columnar evaluation: differential identity, footer-stat
compatibility, dictionary caching, and budget interaction.

The contract under test: the batch-kernel evaluator is an *optimization*,
never a semantics change — for every query it must produce byte-identical
results to the indexed and scan row paths, across all three sealed store
formats, and it must honor ``QueryBudget`` bounds from *inside* batch
kernels, not merely between rules.
"""

import os
import pickle
import zlib

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.errors import BudgetExceededError
from repro.graph.generators import web_graph, with_random_weights
from repro.obs import ledger as obsledger
from repro.pql import budget as budget_mod
from repro.pql import vectorized as vec_mod
from repro.pql.analysis import compile_query
from repro.pql.budget import QueryBudget
from repro.pql.explain import explain
from repro.pql.parser import parse
from repro.provenance import columnar
from repro.provenance.spill import SpillManager, open_store_view
from repro.provenance.store import ProvenanceStore
from repro.runtime.offline import (
    run_layered,
    run_layered_from_spill,
    run_naive_from_spill,
    run_reference,
)
from repro.runtime.online import run_online

FORMATS = ("columnar", "pickle", "legacy")


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(120, avg_degree=5, target_diameter=8, seed=41), seed=41
    )


@pytest.fixture(scope="module")
def full_store(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


def _seal(store, directory, fmt, compression="zlib"):
    spill = SpillManager(
        store, directory=directory,
        format="pickle" if fmt == "legacy" else fmt,
        compression=compression,
    )
    spill.seal_all()
    spill.write_manifest()
    if fmt == "legacy":
        static = spill.load_static()
        for superstep in list(spill.sealed_layers()):
            chunks = spill.load_layer(superstep)
            with open(spill.slab_path(superstep), "wb") as fh:
                fh.write(pickle.dumps(chunks))
        with open(spill._static_path, "wb") as fh:
            fh.write(pickle.dumps(static))
    return spill


@pytest.fixture(scope="module")
def sealed_dirs(full_store, tmp_path_factory):
    dirs = {}
    for fmt in FORMATS:
        directory = str(tmp_path_factory.mktemp(f"vec-{fmt}"))
        _seal(full_store, directory, fmt)
        dirs[fmt] = directory
    return dirs


@pytest.fixture(scope="module")
def lineage_params(full_store):
    sigma = full_store.max_superstep
    alpha = next(x for x, i in full_store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


def query_cases(lineage_params):
    return {
        "query3": dict(params={"source": 0}),
        "query5": dict(),
        "query8": dict(params={"eps": 0.01}),
        "query9": dict(params={"alpha": 0,
                               "sigma": lineage_params["sigma"]}),
        "query10": dict(params=lineage_params),
    }


# ---------------------------------------------------------------------------
# differential matrix: vectorized == indexed == scan, every format
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("qname", [
    "query3", "query5", "query8", "query9", "query10",
])
def test_vectorized_matches_row_paths(qname, sealed_dirs, full_store,
                                      wgraph, lineage_params):
    """One digest across {vectorized, indexed, scan} x {all formats}."""
    case = query_cases(lineage_params)[qname]
    query = Q.NAMED_QUERIES[qname]
    reference = run_reference(
        full_store, query, wgraph, case.get("params"), case.get("udfs"),
    )
    lanes = [
        # (fmt, use_index, vectorize) — non-columnar formats accept the
        # vectorize flag but serve no batches, so they exercise the
        # row-path-under-vectorize degradation too.
        ("columnar", True, True),
        ("columnar", True, False),
        ("columnar", False, False),
        ("columnar", False, True),
        ("pickle", True, True),
        ("legacy", True, True),
    ]
    digests = set()
    for fmt, use_index, vectorize in lanes:
        spill = SpillManager.open(sealed_dirs[fmt])
        for driver in (run_layered_from_spill, run_naive_from_spill):
            result = driver(
                spill, query, wgraph, case.get("params"), case.get("udfs"),
                use_index=use_index, vectorize=vectorize,
            )
            for relation in reference.relations():
                assert result.rows(relation) == reference.rows(relation), (
                    f"{qname} {fmt} {driver.__name__} "
                    f"use_index={use_index} vectorize={vectorize} {relation}"
                )
            digests.add(obsledger.digest_query_result(result))
    assert len(digests) == 1, (
        f"{qname}: results must be byte-identical across evaluators"
    )


def test_evaluator_stats_reported(sealed_dirs, wgraph, lineage_params):
    """Result stats name the path that actually ran and its kernel work."""
    query = Q.NAMED_QUERIES["query9"]
    params = {"alpha": 0, "sigma": lineage_params["sigma"]}

    spill = SpillManager.open(sealed_dirs["columnar"])
    vec = run_layered_from_spill(spill, query, wgraph, params)
    assert vec.stats["evaluator"] == "vectorized"
    assert vec.stats["vectorize"] is True
    assert vec.stats["batched_scans"] > 0
    assert vec.stats["rules_vectorized"] > 0
    assert vec.stats["batch_rows"] > 0
    assert vec.stats["kernel_seconds"]  # at least one kernel timed

    idx = run_layered_from_spill(spill, query, wgraph, params,
                                 vectorize=False)
    assert idx.stats["evaluator"] == "indexed"
    assert "batched_scans" not in idx.stats

    scan = run_layered_from_spill(spill, query, wgraph, params,
                                  use_index=False, vectorize=False)
    assert scan.stats["evaluator"] == "scan"

    # Rebuilt in-memory stores serve no column batches: vectorize=True
    # degrades to the row path and says so.
    pickle_spill = SpillManager.open(sealed_dirs["pickle"])
    row = run_layered_from_spill(pickle_spill, query, wgraph, params)
    assert row.stats["evaluator"] == "indexed"


def test_aggregate_heads_stay_on_row_path(sealed_dirs, wgraph):
    """Aggregates never vectorize; the rule is counted as a fallback and
    the answer still matches the reference evaluator."""
    src = "cnt(X, count(I)) :- superstep(X, I)."
    spill = SpillManager.open(sealed_dirs["columnar"])
    result = run_naive_from_spill(spill, src, wgraph)
    rebuilt = SpillManager.open(sealed_dirs["pickle"])
    expected = run_naive_from_spill(rebuilt, src, wgraph, vectorize=False)
    assert result.rows("cnt") == expected.rows("cnt")
    assert result.stats["rules_fallback"] > 0


def test_string_equality_pushdown(tmp_path, wgraph):
    """Dict-code selection on string columns: same rows as the scan path."""
    store = ProvenanceStore()
    for s in range(3):
        for v in range(8):
            store.add("superstep", (v, s))
            store.add("value", (v, f"tag-{v % 3}", s))
    directory = str(tmp_path / "strstore")
    _seal(store, directory, "columnar")
    src = 'out(X, D, I) :- value(X, D, I), D = "tag-1".'
    spill = SpillManager.open(directory)
    vec = run_layered_from_spill(spill, src, wgraph)
    scan = run_layered_from_spill(spill, src, wgraph, use_index=False,
                                  vectorize=False)
    reference = run_reference(store, src, wgraph)
    assert vec.rows("out") == reference.rows("out")
    assert vec.rows("out") == scan.rows("out")
    assert len(vec.rows("out")) == 3 * 3  # 3 vertices x 3 supersteps
    assert vec.stats["evaluator"] == "vectorized"


def test_explain_shows_vectorized_steps(sealed_dirs, lineage_params):
    """Plans compiled against a sealed view flag batchable scans."""
    spill = SpillManager.open(sealed_dirs["columnar"])
    view = open_store_view(spill)
    try:
        program = parse(Q.NAMED_QUERIES["query9"]).bind(
            alpha=0, sigma=lineage_params["sigma"])
        compiled = compile_query(program, registry=view.registry,
                                 stats=view.stats())
        assert "vectorized" in explain(compiled, verbose=True)
    finally:
        view.close()


# ---------------------------------------------------------------------------
# footer stats: version-1 slabs (no distinct counts) stay readable
# ---------------------------------------------------------------------------
def _downgrade_slab_to_v1(path):
    """Rewrite an ARSC v2 slab as a faithful v1 slab: version byte 1 and
    no per-column ``distinct`` footer stats."""
    with open(path, "rb") as fh:
        data = fh.read()
    trailer_off = len(data) - columnar._TRAILER.size
    footer_off, footer_len, magic = columnar._TRAILER.unpack_from(
        data, trailer_off)
    assert magic == columnar.ARSC_MAGIC
    footer = pickle.loads(
        zlib.decompress(data[footer_off:footer_off + footer_len]))
    assert footer["version"] == columnar.ARSC_VERSION
    footer["version"] = 1
    for desc in footer["relations"].values():
        for col in desc["columns"]:
            col.pop("distinct", None)
    payload = zlib.compress(
        pickle.dumps(footer, protocol=pickle.HIGHEST_PROTOCOL))
    header = columnar._HEADER.pack(columnar.ARSC_MAGIC, 1, 0, 0)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(data[columnar._HEADER.size:footer_off])
        fh.write(payload)
        fh.write(columnar._TRAILER.pack(footer_off, len(payload),
                                        columnar.ARSC_MAGIC))


class TestV1FooterCompat:
    @pytest.fixture()
    def v1_dir(self, full_store, tmp_path):
        directory = str(tmp_path / "v1store")
        _seal(full_store, directory, "columnar")
        for name in os.listdir(directory):
            if name.endswith(".slab"):
                _downgrade_slab_to_v1(os.path.join(directory, name))
        return directory

    def test_v1_slabs_read_and_report_no_distinct(self, v1_dir):
        view = open_store_view(SpillManager.open(v1_dir))
        try:
            stats = view.stats()
            assert stats and all(s["rows"] > 0 for s in stats.values())
            assert all(s["distinct"] == {} for s in stats.values())
        finally:
            view.close()

    def test_v1_queries_match_v2(self, v1_dir, sealed_dirs, wgraph,
                                 lineage_params):
        query = Q.NAMED_QUERIES["query10"]
        v2 = run_layered_from_spill(
            SpillManager.open(sealed_dirs["columnar"]), query, wgraph,
            lineage_params)
        v1 = run_layered_from_spill(
            SpillManager.open(v1_dir), query, wgraph, lineage_params)
        assert (obsledger.digest_query_result(v1)
                == obsledger.digest_query_result(v2))
        # The vector path needs batches, not stats — it still engages.
        assert v1.stats["evaluator"] == "vectorized"
        assert v1.stats["batched_scans"] > 0


# ---------------------------------------------------------------------------
# dictionary caching across queries
# ---------------------------------------------------------------------------
class TestDictCache:
    def _chunks(self):
        rows = {f"tag-{i % 5}" for i in range(40)}
        return {"value": {0: {(0, tag, 1) for tag in rows}}}

    def test_shared_cache_reuses_decoded_dictionary(self):
        blob, _raw = columnar.encode_columnar_slab(self._chunks(), "zlib")
        cache = {}
        first = columnar.ColumnarSlab("<memory>", data=blob,
                                      dict_cache=cache)
        strings = first._column_strings(
            "value", 1, first._relations["value"]["columns"][1])
        assert cache[("value", 1)] is strings

        second = columnar.ColumnarSlab("<memory>", data=blob,
                                       dict_cache=cache)
        again = second._column_strings(
            "value", 1, second._relations["value"]["columns"][1])
        assert again is strings  # served from the cache, not re-decoded
        # Cache hits are still charged, so budgets see resident dicts.
        desc = second._relations["value"]["columns"][1]
        assert second.decoded_bytes >= desc["dict_raw"]

    def test_manager_cache_survives_view_reopen(self, tmp_path, wgraph):
        store = ProvenanceStore()
        for s in range(2):
            for v in range(6):
                store.add("superstep", (v, s))
                store.add("value", (v, f"tag-{v % 3}", s))
        directory = str(tmp_path / "cached")
        _seal(store, directory, "columnar")
        spill = SpillManager.open(directory)
        # The head carries D unbound, so late materialization must decode
        # the string dictionary (a constant-bound D would never touch it).
        src = "out(X, D, I) :- value(X, D, I)."
        first = run_layered_from_spill(spill, src, wgraph)
        caches = [c for c in spill._dict_caches.values() if c]
        assert caches, "head materialization must populate the dict cache"
        cached_ids = {id(strings) for c in caches for strings in c.values()}
        second = run_layered_from_spill(spill, src, wgraph)
        assert (obsledger.digest_query_result(first)
                == obsledger.digest_query_result(second))
        survivors = {id(strings) for c in spill._dict_caches.values()
                     for strings in c.values()}
        assert cached_ids <= survivors  # same decoded lists, not copies
        assert second.stats["peak_slab_bytes"] > 0


# ---------------------------------------------------------------------------
# budget interaction: bounds fire inside batch kernels
# ---------------------------------------------------------------------------
class _CountingBudget(QueryBudget):
    __slots__ = ("kernel_ticks",)

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.kernel_ticks = 0

    def tick(self):
        self.kernel_ticks += 1
        super().tick()


class TestBudgetInteraction:
    def _run(self, sealed_dirs, wgraph, lineage_params, budget):
        spill = SpillManager.open(sealed_dirs["columnar"])
        view = open_store_view(spill)
        try:
            return run_layered(
                view, Q.NAMED_QUERIES["query10"], wgraph, lineage_params,
                budget=budget)
        finally:
            view.close()

    def test_kernels_tick_the_budget(self, sealed_dirs, wgraph,
                                     lineage_params, monkeypatch):
        monkeypatch.setattr(vec_mod, "VECTOR_TICK_STRIDE", 1)
        budget = _CountingBudget()
        result = self._run(sealed_dirs, wgraph, lineage_params, budget)
        assert result.stats["evaluator"] == "vectorized"
        assert budget.kernel_ticks > result.stats["batched_scans"] > 0

    def test_cancellation_fires_mid_evaluation(self, sealed_dirs, wgraph,
                                               lineage_params):
        budget = QueryBudget()
        budget.cancel()
        with pytest.raises(BudgetExceededError, match="cancelled"):
            self._run(sealed_dirs, wgraph, lineage_params, budget)

    def test_timeout_fires_inside_batches(self, sealed_dirs, wgraph,
                                          lineage_params, monkeypatch):
        # Stride-1 ticks in both the kernels and the budget so the tiny
        # deadline is observed on the very first batch row.
        monkeypatch.setattr(vec_mod, "VECTOR_TICK_STRIDE", 1)
        monkeypatch.setattr(budget_mod, "TICK_STRIDE", 1)
        budget = QueryBudget(timeout_seconds=1e-9)
        with pytest.raises(BudgetExceededError, match="deadline"):
            self._run(sealed_dirs, wgraph, lineage_params, budget)

    def test_row_budget_bounds_vectorized_derivations(self, sealed_dirs,
                                                      wgraph,
                                                      lineage_params):
        with pytest.raises(BudgetExceededError, match="rows"):
            self._run(sealed_dirs, wgraph, lineage_params,
                      QueryBudget(max_rows=1))

    def test_depth_budget_still_enforced(self, sealed_dirs, wgraph,
                                         lineage_params):
        with pytest.raises(BudgetExceededError, match="layer"):
            self._run(sealed_dirs, wgraph, lineage_params,
                      QueryBudget(max_depth=1))
