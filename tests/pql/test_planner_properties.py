"""Property tests for the join planner: rule-body literal order must never
change query results (the planner re-orders greedily; any safe order it
picks has to produce the same fixpoint)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import queries as Q
from repro.pql.ast import Program, Rule
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.provenance.store import ProvenanceStore
from repro.runtime.offline import run_reference


def shuffled_program(program: Program, seed: int) -> Program:
    rng = random.Random(seed)
    rules = []
    for rule in program.rules:
        body = list(rule.body)
        rng.shuffle(body)
        rules.append(Rule(rule.head, tuple(body)))
    return Program(tuple(rules), source=program.source)


@st.composite
def random_store(draw):
    store = ProvenanceStore()
    n = draw(st.integers(3, 10))
    supersteps = draw(st.integers(2, 5))
    rng = random.Random(draw(st.integers(0, 10_000)))
    last_active = {}
    for s in range(supersteps):
        for v in range(n):
            if s == 0 or rng.random() < 0.6:
                store.add("superstep", (v, s))
                store.add("value", (v, rng.randint(0, 5) * 1.0, s))
                if v in last_active:
                    store.add("evolution", (v, last_active[v], s))
                last_active[v] = s
                if rng.random() < 0.7:
                    target = rng.randrange(n)
                    store.add("send_message", (v, target, 1.0, s))
                    if s + 1 < supersteps:
                        store.add(
                            "receive_message", (target, v, 1.0, s + 1)
                        )
    return store


QUERIES = [
    ("apt", Q.APT_QUERY, {"eps": 0.5}),
    ("q5", Q.SSSP_WCC_UPDATE_CHECK_QUERY, {}),
    ("q6", Q.SSSP_WCC_STABILITY_QUERY, {}),
]


class TestPlannerOrderIndependence:
    @given(
        random_store(),
        st.sampled_from(QUERIES),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_shuffled_bodies_same_results(self, store, case, seed):
        _name, text, params = case
        udfs = {"udf_diff": lambda a, b, e: abs(a - b) < e}
        program = parse(text)
        if params:
            program = program.bind(**params)
        shuffled = shuffled_program(program, seed)

        base = run_reference(store, program, udfs=udfs)
        permuted = run_reference(store, shuffled, udfs=udfs)
        for rel in set(base.relations()) | set(permuted.relations()):
            assert base.rows(rel) == permuted.rows(rel), rel

    @given(random_store(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_recursive_query_order_independent(self, store, seed):
        sigma = store.max_superstep
        actives = [x for x, i in store.rows("superstep") if i == sigma]
        if not actives:
            return
        params = {"alpha": min(actives), "sigma": sigma}
        program = parse(Q.BACKWARD_LINEAGE_FULL_QUERY).bind(**params)
        shuffled = shuffled_program(program, seed)
        base = run_reference(store, program)
        permuted = run_reference(store, shuffled)
        assert base.rows("back_trace") == permuted.rows("back_trace")
        assert base.rows("back_lineage") == permuted.rows("back_lineage")
