"""Tests for the query EXPLAIN facility and the semi-join optimizer."""

import pytest

from repro.core import queries as Q
from repro.pql.analysis import compile_query
from repro.pql.explain import explain, explain_rule
from repro.pql.parser import parse
from repro.pql.plan import ScanStep
from repro.pql.udf import FunctionRegistry


def compiled_of(src, **params):
    program = parse(src)
    if params:
        program = program.bind(**params)
    funcs = FunctionRegistry({"udf_diff": lambda a, b, e: abs(a - b) < e})
    return compile_query(program, functions=funcs)


class TestExplain:
    def test_apt_report_mentions_everything(self):
        text = explain(compiled_of(Q.APT_QUERY, eps=0.01))
        assert "direction: forward" in text
        assert "online" in text and "layered" in text
        assert "window 0" in text
        assert "full history" in text  # value is unbounded
        assert "shipped to neighbors: change" in text
        assert "anti-join" in text
        assert "superstep-indexed" in text

    def test_backward_report(self):
        text = explain(
            compiled_of(Q.BACKWARD_LINEAGE_FULL_QUERY, alpha=0, sigma=5)
        )
        assert "direction: backward" in text
        assert "online" not in text.splitlines()[1]

    def test_static_rules_shown_as_setup(self):
        text = explain(compiled_of(Q.PAGERANK_CHECK_QUERY))
        assert "static (setup)" in text
        assert "setup plan" in text

    def test_verbose_shows_all_plans(self):
        cq = compiled_of("p(X, I) :- receive_message(X, Y, M, I).")
        short = explain(cq, verbose=False)
        long = explain(cq, verbose=True)
        assert "located plan" not in short
        assert "located plan" in long and "free plan" in long

    def test_stream_relations_listed(self):
        text = explain(compiled_of(Q.CAPTURE_FULL_QUERY))
        assert "stream relations:" in text

    def test_aggregate_annotation(self):
        text = explain(compiled_of(
            "deg(X, count(Y)) :- receive_message(X, Y, M, I)."
        ))
        assert "aggregate" in text


class TestSemiJoinOptimizer:
    def _scans(self, cq, rule_index=0):
        plan = cq.rules[rule_index].anchored_plan
        return [s for s in plan.steps if isinstance(s, ScanStep)]

    def test_projected_scan_becomes_exists(self):
        cq = compiled_of(
            "t(X, I) :- superstep(X, I)."
            "t(X, I) :- receive_message(X, Y, M, I), t(Y, W), W < I, "
            "superstep(X, I)."
        )
        # second rule: t(Y, W) binds W used only in the absorbed filter
        scans = self._scans(cq, 1)
        exists = [s for s in scans if s.exists]
        assert len(exists) == 1
        assert exists[0].relation == "t"
        assert len(exists[0].post_filters) == 1

    def test_used_binding_not_optimized(self):
        cq = compiled_of(
            "p(X, W, I) :- receive_message(X, Y, M, I), value(Y, W, J), "
            "J < I."
        )
        # W appears in the head: the scan must enumerate
        scans = self._scans(cq)
        assert all(not s.exists for s in scans if s.relation == "value")

    def test_aggregate_rules_never_optimized(self):
        cq = compiled_of(
            "cnt(X, count(Y)) :- receive_message(X, Y, M, I), M > 0."
        )
        plan = cq.rules[0].anchored_plan
        assert all(
            not (isinstance(s, ScanStep) and s.exists) for s in plan.steps
        )

    def test_fwd_lineage_uses_semi_join(self):
        cq = compiled_of(Q.CAPTURE_FWD_LINEAGE_QUERY, source=0)
        recursive = cq.rules[1]
        exists = [
            s for s in recursive.anchored_plan.steps
            if isinstance(s, ScanStep) and s.exists
        ]
        assert [s.relation for s in exists] == ["fwd_lineage"]

    def test_semi_join_preserves_results(self):
        from repro.analytics.sssp import SSSP
        from repro.graph.generators import web_graph, with_random_weights
        from repro.runtime.offline import run_reference
        from repro.runtime.online import run_online

        g = with_random_weights(
            web_graph(100, avg_degree=5, target_diameter=8, seed=111),
            seed=111,
        )
        online = run_online(
            g, SSSP(source=0), Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": 0},
        )
        store = run_online(
            g, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
        ).store
        offline = run_reference(
            store, Q.CAPTURE_FWD_LINEAGE_QUERY, g, {"source": 0}
        )
        assert online.query.rows("fwd_lineage") == offline.rows("fwd_lineage")
