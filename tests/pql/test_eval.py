"""Unit tests for the PQL evaluator core over hand-built stores."""

import pytest

from repro.errors import PQLError
from repro.pql.analysis import compile_query
from repro.pql.ast import BinOp, Const, FuncCall, Var
from repro.pql.eval import TupleStore, eval_term
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.provenance.store import ProvenanceStore
from repro.runtime.db import StoreDatabase
from repro.runtime.offline import run_reference


def evaluate(src, store, graph=None, udfs=None, **params):
    return run_reference(store, src, graph=graph, params=params or None,
                         udfs=udfs)


@pytest.fixture
def store():
    s = ProvenanceStore()
    facts = {
        "superstep": [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)],
        "value": [(0, 5.0, 0), (0, 3.0, 1), (1, 7.0, 0), (1, 7.0, 1),
                  (2, 1.0, 1)],
        "evolution": [(0, 0, 1), (1, 0, 1)],
        "receive_message": [(0, 1, 4.0, 1), (2, 0, 2.0, 1)],
        "send_message": [(1, 0, 4.0, 0), (0, 2, 2.0, 0)],
    }
    for rel, rows in facts.items():
        s.add_all(rel, rows)
    return s


class TestEvalTerm:
    def test_var_and_const(self):
        funcs = FunctionRegistry()
        assert eval_term(Var("X"), {"X": 3}, funcs) == 3
        assert eval_term(Const(2.5), {}, funcs) == 2.5

    def test_arithmetic(self):
        funcs = FunctionRegistry()
        expr = BinOp("+", Const(1), BinOp("*", Const(2), Var("X")))
        assert eval_term(expr, {"X": 3}, funcs) == 7
        assert eval_term(BinOp("/", Const(7), Const(2)), {}, funcs) == 3.5
        assert eval_term(BinOp("-", Const(7), Const(2)), {}, funcs) == 5

    def test_function_call(self):
        funcs = FunctionRegistry()
        assert eval_term(FuncCall("abs", (Const(-3),)), {}, funcs) == 3
        assert eval_term(
            FuncCall("elem", (Const((4, 5)), Const(1))), {}, funcs
        ) == 5

    def test_unbound_var_is_internal_error(self):
        with pytest.raises(PQLError):
            eval_term(Var("X"), {}, FunctionRegistry())


class TestJoins:
    def test_single_scan(self, store):
        result = evaluate("p(X, D) :- value(X, D, I), I = 0.", store)
        assert result.rows("p") == [(0, 5.0), (1, 7.0)]

    def test_local_join_across_relations(self, store):
        result = evaluate(
            "p(X, D1, D2) :- value(X, D1, I), value(X, D2, J), "
            "evolution(X, J, I).",
            store,
        )
        assert result.rows("p") == [(0, 3.0, 5.0), (1, 7.0, 7.0)]

    def test_repeated_variable_in_atom(self, store):
        s = ProvenanceStore()
        s.add_all("evolution", [(0, 1, 1), (0, 1, 2)])
        result = evaluate("p(X) :- evolution(X, I, I).", s)
        assert result.rows("p") == [(0,)]

    def test_comparison_filters(self, store):
        result = evaluate("p(X, D) :- value(X, D, I), D > 4.0, I = 0.", store)
        assert result.rows("p") == [(0, 5.0), (1, 7.0)]

    def test_binding_comparison(self, store):
        result = evaluate(
            "p(X, J) :- receive_message(X, Y, M, I), J = I - 1.", store
        )
        assert result.rows("p") == [(0, 0), (2, 0)]

    def test_negation(self, store):
        result = evaluate(
            "got(X, I) :- receive_message(X, Y, M, I)."
            "quiet(X, I) :- superstep(X, I), !got(X, I).",
            store,
        )
        assert (1, 1) in result.rows("quiet")
        assert (0, 1) not in result.rows("quiet")

    def test_boolcall_filter(self, store):
        result = evaluate(
            "p(X, D) :- value(X, D, I), I = 1, outside(D, 2.0, 6.0).",
            store,
        )
        assert result.rows("p") == [(1, 7.0), (2, 1.0)]

    def test_udf(self, store):
        result = evaluate(
            "close(X, I) :- value(X, D1, I), value(X, D2, J), "
            "evolution(X, J, I), udf_diff(D1, D2, 0.5).",
            store,
            udfs={"udf_diff": lambda a, b, e: abs(a - b) < e},
        )
        assert result.rows("close") == [(1, 1)]

    def test_constant_in_atom_argument(self, store):
        result = evaluate("p(X) :- value(X, 7.0, 0).", store)
        assert result.rows("p") == [(1,)]

    def test_anonymous_variables_distinct(self, store):
        result = evaluate("p(X) :- receive_message(X, _, _, _).", store)
        assert result.rows("p") == [(0,), (2,)]

    def test_recursion_transitive_closure(self, store):
        result = evaluate(
            "t(X, I) :- superstep(X, I), I = 1, X = 2."
            "t(X, I) :- send_message(X, Y, M, I), t(Y, J), J = I + 1.",
            store,
        )
        # 2@1 <- 0 sent at 0 <- 1 sent... 1 sent to 0 at superstep 0, but
        # t(0, ...) only holds at superstep 0, so J = I + 1 fails for 1.
        assert result.rows("t") == [(0, 0), (2, 1)]

    def test_head_expression(self, store):
        result = evaluate(
            "p(X, D * 2) :- value(X, D, I), I = 0.", store
        )
        assert result.rows("p") == [(0, 10.0), (1, 14.0)]

    def test_static_edge_relation(self, store):
        from repro.graph.digraph import from_edge_list

        g = from_edge_list([(0, 1), (1, 2)])
        result = evaluate(
            "has_in(X) :- edge(Y, X)."
            "starved(X, I) :- superstep(X, I), !has_in(X).",
            store,
            graph=g,
        )
        assert result.rows("has_in") == [(1,), (2,)]
        assert result.rows("starved") == [(0, 0), (0, 1)]


class TestAggregates:
    def test_count_distinct_witnesses(self, store):
        result = evaluate(
            "active(X, count(I)) :- superstep(X, I).", store
        )
        assert result.rows("active") == [(0, 2), (1, 2), (2, 1)]

    def test_sum_and_groups(self, store):
        s = ProvenanceStore()
        s.add_all("receive_message",
                  [(0, 1, 2.0, 1), (0, 2, 3.0, 1), (0, 1, 5.0, 2)])
        result = evaluate(
            "msum(X, I, sum(M)) :- receive_message(X, Y, M, I).", s
        )
        assert result.rows("msum") == [(0, 1, 5.0), (0, 2, 5.0)]

    def test_min_max_avg(self, store):
        result = evaluate(
            "vmin(X, min(D)) :- value(X, D, I)."
            "vmax(X, max(D)) :- value(X, D, I)."
            "vavg(X, avg(D)) :- value(X, D, I).",
            store,
        )
        assert result.rows("vmin") == [(0, 3.0), (1, 7.0), (2, 1.0)]
        assert result.rows("vmax") == [(0, 5.0), (1, 7.0), (2, 1.0)]
        assert result.rows("vavg") == [(0, 4.0), (1, 7.0), (2, 1.0)]

    def test_duplicate_values_from_distinct_witnesses_counted(self):
        s = ProvenanceStore()
        # two neighbors deliver the same message value: sum must be 4, not 2
        s.add_all("receive_message", [(0, 1, 2.0, 1), (0, 2, 2.0, 1)])
        result = evaluate(
            "msum(X, sum(M)) :- receive_message(X, Y, M, I).", s
        )
        assert result.rows("msum") == [(0, 4.0)]

    def test_aggregate_feeds_downstream(self, store):
        result = evaluate(
            "active(X, count(I)) :- superstep(X, I)."
            "busy(X) :- active(X, C), C >= 2.",
            store,
        )
        assert result.rows("busy") == [(0,), (1,)]


class TestTupleStore:
    def test_add_and_dedupe(self):
        ts = TupleStore()
        assert ts.add("r", 0, (0, 1))
        assert not ts.add("r", 0, (0, 1))
        assert ts.num_rows() == 1

    def test_rows_at_falls_back_without_index(self):
        ts = TupleStore()
        ts.add("r", 0, (0, 1))
        assert set(ts.rows_at("r", 0, 5)) == {(0, 1)}

    def test_timed_index(self):
        ts = TupleStore()
        ts.add_timed("r", 0, (0, "a", 1), 1)
        ts.add_timed("r", 0, (0, "b", 2), 2)
        assert list(ts.rows_at("r", 0, 1)) == [(0, "a", 1)]
        assert list(ts.rows_at("r", 0, 3)) == []

    def test_set_group_replaces(self):
        ts = TupleStore()
        assert ts.set_group("agg", 0, (0,), (0, 1))
        assert ts.set_group("agg", 0, (0,), (0, 2))
        assert not ts.set_group("agg", 0, (0,), (0, 2))
        assert ts.rows("agg", 0) == {(0, 2)}


class TestErrorContext:
    def test_rule_error_names_rule_and_site(self, store):
        from repro.errors import PQLError

        with pytest.raises(PQLError, match="ZeroDivisionError"):
            evaluate("p(X, D / 0) :- value(X, D, I).", store)

    def test_udf_exception_wrapped(self, store):
        from repro.errors import PQLError

        def boom(*_args):
            raise RuntimeError("kaboom")

        with pytest.raises(PQLError, match="kaboom"):
            evaluate(
                "p(X) :- value(X, D, I), boom(D).", store,
                udfs={"boom": boom},
            )
