"""Unit tests for trace sinks, the schema validator and converters."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.sinks import (
    SCHEMA_VERSION,
    InMemorySink,
    JsonlSink,
    from_chrome_trace,
    meta_event,
    read_trace,
    to_chrome_trace,
    trace_to_prometheus,
    validate_events,
)
from repro.obs.trace import PHASE_RUN, PHASE_SUPERSTEP, Tracer


def _sample_events():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("run", PHASE_RUN, analytic="sssp"):
        with tracer.span("superstep", PHASE_SUPERSTEP, superstep=0):
            pass
        tracer.event("halt", PHASE_RUN, reason="converged")
    return [meta_event()] + sink.events


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("run", PHASE_RUN):
            pass
        tracer.close()

        events = read_trace(path)
        assert events[0]["type"] == "meta"
        assert events[0]["schema"] == SCHEMA_VERSION
        assert events[1]["type"] == "span"
        assert validate_events(events) == []

    def test_file_like_sink_is_not_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            sink = JsonlSink(fh)
            sink.emit({"type": "instant", "name": "x", "cat": "x",
                       "ts": 1, "attrs": {}})
            sink.close()
            assert not fh.closed
        assert len(read_trace(str(path))) == 2  # meta + instant

    def test_non_json_values_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "instant", "name": "x", "cat": "x", "ts": 1,
                   "attrs": {"vertex": object()}})
        sink.close()
        events = read_trace(path)
        assert "object" in events[1]["attrs"]["vertex"]

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "meta"\nnot json\n')
        with pytest.raises(ReproError):
            read_trace(str(path))


class TestValidate:
    def test_valid_stream(self):
        assert validate_events(_sample_events()) == []

    def test_missing_meta(self):
        events = [e for e in _sample_events() if e["type"] != "meta"]
        assert any("no meta" in p for p in validate_events(events))

    def test_duplicate_meta_and_span_id(self):
        events = _sample_events()
        events.append(meta_event())
        span = next(e for e in events if e["type"] == "span")
        events.append(dict(span))
        problems = validate_events(events)
        assert any("duplicate meta" in p for p in problems)
        assert any("duplicate span id" in p for p in problems)

    def test_missing_key_and_bad_type(self):
        events = [meta_event(),
                  {"type": "span", "name": 3, "cat": "run", "id": 1,
                   "ts": 0, "dur": 1}]
        problems = validate_events(events)
        assert any("missing key 'attrs'" in p for p in problems)
        assert any("'name' has type" in p for p in problems)

    def test_unknown_type_and_schema_mismatch(self):
        events = [dict(meta_event(), schema=99), {"type": "mystery"}]
        problems = validate_events(events)
        assert any("schema" in p for p in problems)
        assert any("unknown type" in p for p in problems)

    def test_negative_duration(self):
        events = _sample_events()
        next(e for e in events if e["type"] == "span")["dur"] = -5
        assert any("negative duration" in p for p in validate_events(events))


class TestChromeConversion:
    def test_round_trip_is_lossless(self):
        events = _sample_events()
        chrome = to_chrome_trace(events)
        back = from_chrome_trace(chrome)
        # modulo the meta header, the event streams are identical
        assert back[0]["type"] == "meta"
        originals = [e for e in events if e["type"] != "meta"]
        restored = [e for e in back if e["type"] != "meta"]
        assert restored == originals

    def test_chrome_shape(self):
        chrome = to_chrome_trace(_sample_events())
        assert chrome["displayTimeUnit"] == "ms"
        phases = [te["ph"] for te in chrome["traceEvents"]]
        assert phases.count("X") == 2 and phases.count("i") == 1
        complete = next(te for te in chrome["traceEvents"]
                        if te["ph"] == "X" and te["name"] == "superstep")
        assert "span_id" in complete["args"]
        assert "parent_id" in complete["args"]

    def test_chrome_json_serializable(self):
        json.dumps(to_chrome_trace(_sample_events()))


class TestPrometheusConversion:
    def test_spans_aggregate_by_phase(self):
        text = trace_to_prometheus(_sample_events())
        assert 'repro_span_total{phase="run"} 1' in text
        assert 'repro_span_total{phase="superstep"} 1' in text
        assert 'repro_span_seconds_count{phase="run"} 1' in text

    def test_instants_and_meta_are_ignored(self):
        text = trace_to_prometheus([meta_event()])
        assert "repro_span_total" not in text
