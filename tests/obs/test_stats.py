"""Unit tests for trace summarization and the ``repro stats`` command."""

import pytest

from repro.cli import main
from repro.obs.sinks import JsonlSink, meta_event
from repro.obs.stats import render_summary, summarize
from repro.obs.trace import (
    PHASE_COMPUTE,
    PHASE_RUN,
    PHASE_SUPERSTEP,
    Tracer,
)


def _span(cat, dur_us, span_id, name=None):
    return {"type": "span", "name": name or cat, "cat": cat, "id": span_id,
            "parent": None, "ts": 0, "dur": dur_us, "attrs": {}}


class TestSummarize:
    def test_phase_aggregates(self):
        events = [
            meta_event(),
            _span(PHASE_RUN, 1_000_000, 1),
            _span(PHASE_SUPERSTEP, 600_000, 2),
            _span(PHASE_SUPERSTEP, 300_000, 3),
            _span(PHASE_COMPUTE, 450_000, 4),
            {"type": "instant", "name": "halt", "cat": PHASE_RUN,
             "ts": 0, "attrs": {}},
        ]
        summary = summarize(events)
        assert summary["runs"] == 1
        assert summary["run_seconds"] == 1.0
        assert summary["supersteps"] == 2
        assert summary["superstep_seconds"] == pytest.approx(0.9)
        assert summary["coverage"] == pytest.approx(0.9)
        assert summary["instants"] == 1

        steps = summary["phases"][PHASE_SUPERSTEP]
        assert steps["count"] == 2
        assert steps["total_seconds"] == pytest.approx(0.9)
        assert steps["mean_seconds"] == pytest.approx(0.45)
        assert steps["min_seconds"] == 0.3
        assert steps["max_seconds"] == 0.6
        assert steps["share_of_run"] == pytest.approx(0.9)

    def test_empty_trace(self):
        summary = summarize([meta_event()])
        assert summary["runs"] == 0
        assert summary["coverage"] is None
        assert summary["phases"] == {}

    def test_render(self):
        events = [_span(PHASE_RUN, 1_000_000, 1),
                  _span(PHASE_SUPERSTEP, 900_000, 2)]
        text = render_summary(summarize(events))
        assert "1 run(s), 1 superstep span(s)" in text
        assert "90.0% of run wall time" in text
        assert "superstep" in text

    def test_render_without_runs(self):
        assert "no run spans" in render_summary(summarize([]))


class TestStatsCommand:
    def _write_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlSink(path))
        with tracer.span("run", PHASE_RUN):
            with tracer.span("superstep", PHASE_SUPERSTEP):
                pass
        tracer.close()
        return path

    def test_text_summary(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out and "superstep" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["stats", path, "--validate"]) == 0
        assert "trace OK" in capsys.readouterr().out

    def test_validate_broken_trace(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "x"}\n')
        assert main(["stats", path, "--validate"]) == 1
        assert "invalid:" in capsys.readouterr().err

    def test_chrome_output_to_file(self, tmp_path, capsys):
        import json

        path = self._write_trace(tmp_path)
        out_path = str(tmp_path / "trace.chrome.json")
        assert main(["stats", path, "--format", "chrome",
                     "--out", out_path]) == 0
        with open(out_path, "r", encoding="utf-8") as fh:
            chrome = json.load(fh)
        assert len(chrome["traceEvents"]) == 2

    def test_prom_output(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["stats", path, "--format", "prom"]) == 0
        assert 'repro_span_total{phase="run"} 1' in capsys.readouterr().out
