"""End-to-end tracing acceptance: a traced capture+query session yields a
valid JSONL trace whose per-phase durations account for the run wall time,
and the trace converts losslessly to the other sink formats."""

import pytest

from repro.analytics.sssp import SSSP
from repro.core.ariadne import Ariadne
from repro.graph.generators import web_graph, with_random_weights
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.sinks import (
    JsonlSink,
    from_chrome_trace,
    read_trace,
    to_chrome_trace,
    trace_to_prometheus,
    validate_events,
)
from repro.obs.stats import summarize
from repro.obs.trace import (
    PHASE_BARRIER,
    PHASE_CAPTURE,
    PHASE_COMPUTE,
    PHASE_QUERY,
    PHASE_RUN,
    PHASE_SPILL,
    PHASE_SUPERSTEP,
    Tracer,
    tracing,
)
from repro.provenance.spill import SpillManager, rebuild_store
from repro.runtime.offline import run_layered


@pytest.fixture
def traced_session(tmp_path):
    """Capture provenance online and query it offline, all traced."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    trace_path = str(tmp_path / "session.jsonl")
    graph = with_random_weights(
        web_graph(70, avg_degree=4, target_diameter=6, seed=23), seed=23
    )
    try:
        tracer = Tracer(JsonlSink(trace_path), registry=registry)
        with tracing(tracer):
            ariadne = Ariadne(graph, SSSP(source=0))
            captured = ariadne.capture()
            spill = SpillManager(
                captured.store, directory=str(tmp_path / "prov")
            )
            spill.seal_all()
            store = rebuild_store(SpillManager.open(str(tmp_path / "prov")))
            result = run_layered(
                store, "trace(X, I) :- value(X, D, I).", graph
            )
        tracer.close()
        yield read_trace(trace_path), captured, result, registry
    finally:
        set_registry(previous)


class TestTracedSession:
    def test_trace_validates(self, traced_session):
        events, _, _, _ = traced_session
        assert validate_events(events) == []

    def test_all_phases_present(self, traced_session):
        events, captured, result, _ = traced_session
        cats = {e["cat"] for e in events if e["type"] == "span"}
        assert {PHASE_RUN, PHASE_SUPERSTEP, PHASE_COMPUTE, PHASE_BARRIER,
                PHASE_CAPTURE, PHASE_QUERY, PHASE_SPILL} <= cats
        assert result.derivations > 0
        assert captured.store.num_rows > 0

    def test_phase_durations_sum_to_wall_time(self, traced_session):
        events, _, _, _ = traced_session
        spans = [e for e in events if e["type"] == "span"]
        run = next(s for s in spans if s["cat"] == PHASE_RUN)
        steps = [s for s in spans if s["cat"] == PHASE_SUPERSTEP]
        # superstep spans tile the run span: they are disjoint
        # subintervals, so they sum to at most the run wall and — since
        # the loop body outside them is a few statements — must cover
        # the bulk of it
        step_total = sum(s["dur"] for s in steps)
        assert step_total <= run["dur"]
        assert step_total >= 0.5 * run["dur"]
        # compute + barrier tile each superstep the same way
        by_id = {s["id"]: s for s in spans}
        for step in steps:
            inner = sum(
                s["dur"] for s in spans
                if s["cat"] in (PHASE_COMPUTE, PHASE_BARRIER)
                and by_id.get(s["parent"]) is step
            )
            assert inner <= step["dur"] + 2  # us floor rounding
        # the capture + query-eval phase accumulators are measured inside
        # compute, so they cannot exceed the compute total
        compute_total = sum(
            s["dur"] for s in spans if s["cat"] == PHASE_COMPUTE
        )
        online_total = sum(
            s["dur"] for s in spans
            if s["cat"] in (PHASE_CAPTURE, PHASE_QUERY)
            and "layer" not in s["attrs"] and "mode" not in s["attrs"]
        )
        assert online_total <= compute_total + 2 * len(spans)

    def test_summary_coverage(self, traced_session):
        events, _, _, _ = traced_session
        summary = summarize(events)
        assert summary["runs"] == 1
        assert 0.5 <= summary["coverage"] <= 1.0

    def test_chrome_round_trip(self, traced_session):
        events, _, _, _ = traced_session
        restored = from_chrome_trace(to_chrome_trace(events))
        assert ([e for e in restored if e["type"] != "meta"]
                == [e for e in events if e["type"] != "meta"])

    def test_prometheus_rendering(self, traced_session):
        events, _, _, registry = traced_session
        text = trace_to_prometheus(events)
        assert 'repro_span_total{phase="run"} 1' in text
        # the live registry mirrored the same spans while they happened
        snap = registry.snapshot()
        assert snap['repro_span_total{phase="run"}'] == 1
        assert snap["repro_capture_derivations_total"] >= 0
        assert snap["repro_engine_runs_total"] == 1

    def test_prune_counters_in_stats(self, traced_session):
        _, captured, _, _ = traced_session
        stats = captured.query.stats
        assert "prune_hits" in stats and "prune_misses" in stats

    def test_offline_query_spans_carry_mode(self, traced_session):
        events, _, _, _ = traced_session
        offline = [
            e for e in events
            if e["type"] == "span" and e["attrs"].get("mode") == "layered"
        ]
        assert offline
        assert all(e["cat"] == PHASE_QUERY for e in offline)
