"""Property tests for Tracer.ingest id-remapping.

The parallel backend merges worker-local traces into the master trace at
every barrier; each worker's tracer assigns span ids from 1, so merging
must remap ids to fresh ones while preserving the parent-link structure.
These properties pin the invariants for arbitrary span forests — including
merges of already-merged traces, which is what happens when a warm pool
ships multiple runs' events through the same master tracer.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.sinks import InMemorySink, meta_event, validate_events
from repro.obs.trace import Tracer

SLOW = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def forests(draw):
    """A worker-shaped event batch: spans with ids 1..n (parents may point
    at other batch spans, be None, or dangle outside the batch — a worker
    never re-sends spans the master already has), plus optional instants."""
    n = draw(st.integers(min_value=1, max_value=10))
    events = []
    for i in range(n):
        span_id = i + 1
        parent = draw(st.one_of(
            st.none(),
            st.integers(min_value=1, max_value=n + 3).filter(
                lambda p, s=span_id: p != s
            ),
        ))
        events.append({
            "type": "span", "name": f"s{span_id}", "cat": "worker",
            "id": span_id, "parent": parent,
            "ts": 100 * span_id, "dur": 7, "attrs": {"k": span_id},
        })
    for j in range(draw(st.integers(min_value=0, max_value=3))):
        pos = draw(st.integers(min_value=0, max_value=len(events)))
        events.insert(pos, {
            "type": "instant", "name": f"i{j}", "cat": "worker",
            "ts": 50 * (j + 1), "attrs": {},
        })
    return events


def _shape(events):
    """Canonical parent structure: for each event (in order), the index of
    its parent within the batch, or None for roots/external parents.
    Invariant under id remapping."""
    index = {}
    for i, event in enumerate(events):
        if "id" in event:
            index[event["id"]] = i
    return [
        (event["type"], event["name"], index.get(event.get("parent")))
        for event in events
    ]


def _ingest(events, parent_id=None, **extra):
    sink = InMemorySink()
    tracer = Tracer(sink)
    # burn some ids so worker ids always collide with master history
    tracer._next_id = 5
    tracer.ingest(events, parent_id=parent_id, **extra)
    return sink.events


class TestIngestProperties:
    @SLOW
    @given(forests())
    def test_ids_are_fresh_and_unique(self, events):
        out = _ingest(events)
        out_ids = [e["id"] for e in out if "id" in e]
        assert len(out_ids) == len(set(out_ids))
        assert all(oid >= 5 for oid in out_ids)

    @SLOW
    @given(forests(), st.one_of(st.none(), st.integers(1, 4)))
    def test_parent_links_are_remapped_consistently(self, events, parent_id):
        out = _ingest(events, parent_id=parent_id)
        id_map = {
            src["id"]: dst["id"]
            for src, dst in zip(events, out) if "id" in src
        }
        batch_ids = set(id_map)
        for src, dst in zip(events, out):
            if src["type"] != "span":
                continue
            if src["parent"] in batch_ids:
                assert dst["parent"] == id_map[src["parent"]]
            else:
                # roots and dangling parents reparent under the graft point
                assert dst["parent"] == parent_id

    @SLOW
    @given(forests())
    def test_structure_is_isomorphic_after_merge(self, events):
        assert _shape(_ingest(events)) == _shape(events)

    @SLOW
    @given(forests())
    def test_merge_of_merges_preserves_structure(self, events):
        once = _ingest(events)
        twice = _ingest(once)
        assert _shape(twice) == _shape(once) == _shape(events)
        ids = [e["id"] for e in twice if "id" in e]
        assert len(ids) == len(set(ids))

    @SLOW
    @given(forests(), st.integers(0, 7))
    def test_extra_attrs_stamped_and_originals_kept(self, events, worker):
        out = _ingest(events, worker=worker)
        for src, dst in zip(events, out):
            assert dst["attrs"].get("worker") == worker
            for key, value in src["attrs"].items():
                assert dst["attrs"][key] == value
            assert "worker" not in src["attrs"]  # input not mutated

    @SLOW
    @given(st.lists(forests(), min_size=2, max_size=4))
    def test_many_workers_never_collide(self, batches):
        """Worker tracers all start ids at 1; merging several batches into
        one master must still yield globally unique ids and a valid trace."""
        sink = InMemorySink()
        master = Tracer(sink)
        sink.emit(meta_event())
        root = master.span("root", "run")
        for w, batch in enumerate(batches):
            master.ingest(batch, parent_id=root.span_id, worker=w)
        root.end()
        ids = [e["id"] for e in sink.events if "id" in e]
        assert len(ids) == len(set(ids))
        assert validate_events(sink.events) == []
