"""Unit tests for the metrics registry."""

import math

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "things")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ReproError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_buckets_and_sum(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", boundaries=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)
        assert child.bucket_counts == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert child.cumulative() == [1, 2, 3]

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ReproError):
            MetricsRegistry().histogram("bad", boundaries=(1.0, 0.1)).observe(1)

    def test_default_bucket_sets_are_sorted(self):
        assert list(SECONDS_BUCKETS) == sorted(SECONDS_BUCKETS)
        assert list(BYTES_BUCKETS) == sorted(BYTES_BUCKETS)


class TestLabels:
    def test_labeled_children_are_distinct(self):
        registry = MetricsRegistry()
        fam = registry.counter("ops_total", labels=("direction",))
        fam.labels("read").inc()
        fam.labels("write").inc(2)
        assert fam.labels("read").value == 1
        assert fam.labels(direction="write").value == 2

    def test_label_arity_checked(self):
        fam = MetricsRegistry().counter("ops_total", labels=("a", "b"))
        with pytest.raises(ReproError):
            fam.labels("only-one")
        with pytest.raises(ReproError):
            fam.labels(a="x")  # missing b

    def test_unlabeled_proxy_rejected_on_labeled_family(self):
        fam = MetricsRegistry().counter("ops_total", labels=("a",))
        with pytest.raises(ReproError):
            fam.inc()


class TestRegistry:
    def test_duplicate_registration_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "first help")
        b = registry.counter("x_total", "ignored")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ReproError):
            registry.gauge("x_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ReproError):
            registry.counter("x_total", labels=("b",))

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h_seconds").observe(0.2)
        registry.counter("lbl_total", labels=("k",)).labels("v").inc()
        snap = registry.snapshot()
        assert snap["c_total"] == 3
        assert snap["h_seconds"] == {"count": 1, "sum": 0.2}
        assert snap['lbl_total{k="v"}'] == 1

    def test_process_default_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs run").inc(2)
        registry.gauge("depth", "queue depth").set(1.5)
        text = registry.to_prometheus()
        assert "# HELP jobs_total jobs run" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 2" in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", boundaries=(0.1, 1.0)).observe(0.5)
        text = registry.to_prometheus()
        assert 'h_seconds_bucket{le="0.1"} 0' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text

    def test_labeled_histogram_le_label_composes(self):
        registry = MetricsRegistry()
        fam = registry.histogram(
            "h_seconds", labels=("phase",), boundaries=(1.0,)
        )
        fam.labels("compute").observe(0.5)
        text = registry.to_prometheus()
        assert 'h_seconds_bucket{phase="compute",le="1"} 1' in text
        assert 'h_seconds_count{phase="compute"} 1' in text

    def test_empty_families_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("unused_total", labels=("k",))  # no children yet
        assert "unused_total" not in registry.to_prometheus()

    def test_inf_formatting(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.inf)
        assert "g +Inf" in registry.to_prometheus()
