"""Unit tests for the span tracer."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import InMemorySink
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    PHASE_CAPTURE,
    PHASE_RUN,
    PHASE_SUPERSTEP,
    PHASES,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)


def spans(sink):
    return [e for e in sink.events if e["type"] == "span"]


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("run", PHASE_RUN, analytic="sssp") as span:
            span.set(supersteps=3)
        (event,) = spans(sink)
        assert event["name"] == "run"
        assert event["cat"] == PHASE_RUN
        assert event["dur"] >= 0
        assert event["attrs"] == {"analytic": "sssp", "supersteps": 3}

    def test_nesting_gives_implicit_parents(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("run", PHASE_RUN):
            with tracer.span("superstep", PHASE_SUPERSTEP):
                pass
            with tracer.span("superstep", PHASE_SUPERSTEP):
                pass
        step_a, step_b, run = spans(sink)  # children finish first
        assert run["parent"] is None
        assert step_a["parent"] == run["id"]
        assert step_b["parent"] == run["id"]
        assert len({run["id"], step_a["id"], step_b["id"]}) == 3

    def test_explicit_parent_overrides_stack(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        root = tracer.span("run", PHASE_RUN)
        with tracer.span("superstep", PHASE_SUPERSTEP):
            child = tracer.span("x", PHASE_CAPTURE, parent=root)
            child.end()
        root.end()
        child_event = next(e for e in spans(sink) if e["name"] == "x")
        assert child_event["parent"] == root.span_id

    def test_double_end_is_idempotent(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        span = tracer.span("run", PHASE_RUN)
        span.end()
        span.end()
        assert len(spans(sink)) == 1

    def test_record_emits_backdated_span(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with tracer.span("superstep", PHASE_SUPERSTEP) as parent:
            tracer.record("provenance-capture", PHASE_CAPTURE, 0.5,
                          superstep=2)
        event = next(e for e in spans(sink) if e["cat"] == PHASE_CAPTURE)
        assert event["dur"] == pytest.approx(500_000, rel=0.01)  # us
        assert event["parent"] == parent.span_id
        assert event["attrs"]["superstep"] == 2

    def test_instant_event(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.event("halt", PHASE_RUN, reason="converged")
        (event,) = sink.events
        assert event["type"] == "instant"
        assert event["attrs"] == {"reason": "converged"}

    def test_close_ends_leftover_spans(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.span("run", PHASE_RUN)
        tracer.span("superstep", PHASE_SUPERSTEP)
        tracer.close()
        assert len(spans(sink)) == 2


class TestRegistryMirror:
    def test_span_durations_land_in_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(InMemorySink(), registry=registry)
        with tracer.span("run", PHASE_RUN):
            pass
        snap = registry.snapshot()
        assert snap['repro_span_total{phase="run"}'] == 1
        assert snap['repro_span_seconds{phase="run"}']["count"] == 1


class TestNullTracer:
    def test_disabled_flag_and_shared_singletons(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert NullTracer().span("y") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("run", PHASE_RUN) as span:
            assert span.set(a=1) is span
            span.end()
        NULL_TRACER.record("x", PHASE_CAPTURE, 1.0)
        NULL_TRACER.event("x")
        NULL_TRACER.flush()
        NULL_TRACER.close()

    def test_module_default_is_null(self):
        assert get_tracer() is NULL_TRACER or get_tracer().enabled


class TestActiveTracer:
    def test_set_tracer_roundtrip(self):
        tracer = Tracer(InMemorySink())
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_set_none_restores_null(self):
        previous = set_tracer(None)
        try:
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)

    def test_tracing_context_manager(self):
        before = get_tracer()
        tracer = Tracer(InMemorySink())
        with tracing(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is before


class TestPhaseTaxonomy:
    def test_phase_names_are_fixed_and_unique(self):
        assert len(set(PHASES)) == len(PHASES)
        assert PHASE_RUN in PHASES and PHASE_CAPTURE in PHASES
