"""Tests for the run ledger and audit verification (repro.obs.ledger)."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.graph.generators import chain_graph, web_graph, with_random_weights
from repro.obs.ledger import (
    RunLedger,
    canonical_json,
    compare_records,
    dataset_fingerprint,
    digest_graph,
    digest_rows,
    digest_values,
    environment_fingerprint,
    make_record,
    manifest_digest,
    new_run_id,
    render_comparison,
    store_fingerprint,
    verify_record,
    verify_store,
)
from repro.provenance.spill import (
    MANIFEST_FILENAME,
    SpillManager,
    read_manifest,
)
from repro.provenance.store import ProvenanceStore


def _sealed_store(tmp_path, run_id=None):
    store = ProvenanceStore()
    store.add("value", (1, 0.5, 0))
    store.add("value", (2, 0.25, 1))
    spill = SpillManager(store, directory=str(tmp_path / "prov"))
    spill.run_id = run_id
    spill.seal_all()
    return spill


class TestDigests:
    def test_values_digest_is_order_insensitive(self):
        a = {1: 0.5, 2: 0.25, 3: 0.125}
        b = dict(reversed(list(a.items())))
        assert digest_values(a) == digest_values(b)
        assert digest_values(a) != digest_values({**a, 3: 0.0})

    def test_rows_digest_is_order_insensitive(self):
        a = {"r": [(1, 2), (3, 4)], "s": [(5,)]}
        b = {"s": [(5,)], "r": [(3, 4), (1, 2)]}
        assert digest_rows(a) == digest_rows(b)
        assert digest_rows(a) != digest_rows({"r": [(1, 2)], "s": [(5,)]})

    def test_graph_digest_tracks_content_not_construction(self):
        g1 = chain_graph(10)
        g2 = chain_graph(10)
        assert digest_graph(g1) == digest_graph(g2)
        g2.add_edge(0, 9)
        assert digest_graph(g1) != digest_graph(g2)

    def test_dataset_fingerprint_shape(self):
        g = with_random_weights(web_graph(20, seed=3), seed=3)
        fp = dataset_fingerprint(g, source="web-20")
        assert fp["vertices"] == 20
        assert fp["edges"] == g.num_edges
        assert len(fp["edges_sha256"]) == 64
        assert fp["source"] == "web-20"

    def test_canonical_json_is_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )


class TestRunIds:
    def test_same_content_same_id(self):
        a = new_run_id("capture", {"x": 1}, started_ns=123)
        b = new_run_id("capture", {"x": 1}, started_ns=123)
        assert a == b and a.startswith("r") and len(a) == 17

    def test_content_changes_id(self):
        base = new_run_id("capture", {"x": 1}, started_ns=123)
        assert new_run_id("capture", {"x": 2}, started_ns=123) != base
        assert new_run_id("query", {"x": 1}, started_ns=123) != base
        assert new_run_id("capture", {"x": 1}, started_ns=124) != base


class TestRunLedger:
    def test_append_and_read_roundtrip(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        record = ledger.append(make_record("run", analytic="sssp"))
        assert record["run_id"].startswith("r")
        assert os.path.exists(ledger.path)
        (back,) = ledger.records()
        assert back["run_id"] == record["run_id"]
        assert back["command"] == "run"
        assert back["environment"]["usable_cores"] >= 1

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "nope")).records() == []

    def test_get_by_prefix_and_latest(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        first = ledger.append(make_record("capture"))
        second = ledger.append(make_record("query",
                                           parent_run_id=first["run_id"]))
        assert ledger.get(first["run_id"][:8])["run_id"] == first["run_id"]
        assert ledger.latest()["run_id"] == second["run_id"]
        assert ledger.latest("capture")["run_id"] == first["run_id"]
        assert ledger.resolve("latest:query")["run_id"] == second["run_id"]
        with pytest.raises(ReproError):
            ledger.get("rdoesnotexist0000")

    def test_corrupt_line_raises(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        ledger.append(make_record("run"))
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with pytest.raises(ReproError, match="corrupt"):
            ledger.records()

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) >= {"python", "platform", "usable_cores",
                            "package_version"}
        assert env["package_version"]


class TestManifestStamping:
    def test_seal_all_writes_manifest_with_digests(self, tmp_path):
        spill = _sealed_store(tmp_path, run_id="rcafe")
        manifest = read_manifest(spill.directory)
        assert manifest["run_id"] == "rcafe"
        assert set(manifest["slabs"]) == {
            "static.slab", "layer-000000.slab", "layer-000001.slab",
        }
        for entry in manifest["slabs"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0

    def test_open_reads_back_run_id_and_digests(self, tmp_path):
        spill = _sealed_store(tmp_path, run_id="rbeef")
        reopened = SpillManager.open(spill.directory)
        assert reopened.run_id == "rbeef"
        assert reopened.slab_digests == spill.slab_digests

    def test_close_removes_manifest(self, tmp_path):
        spill = _sealed_store(tmp_path)
        path = os.path.join(spill.directory, MANIFEST_FILENAME)
        assert os.path.exists(path)
        spill.close()
        assert not os.path.exists(path)


class TestVerification:
    def test_fresh_store_verifies_clean(self, tmp_path):
        spill = _sealed_store(tmp_path)
        problems, details = verify_store(spill.directory)
        assert problems == []
        assert set(details["recomputed"]) == set(spill.slab_digests)

    def test_tampered_slab_is_detected(self, tmp_path):
        spill = _sealed_store(tmp_path)
        slab = os.path.join(spill.directory, "layer-000000.slab")
        with open(slab, "r+b") as fh:
            fh.seek(8)
            fh.write(b"\xff\xff")
        problems, _ = verify_store(spill.directory)
        assert any("layer-000000.slab" in p and "drift" in p
                   for p in problems)

    def test_missing_and_foreign_slabs_are_detected(self, tmp_path):
        spill = _sealed_store(tmp_path)
        os.unlink(os.path.join(spill.directory, "layer-000001.slab"))
        with open(os.path.join(spill.directory, "layer-000099.slab"),
                  "wb") as fh:
            fh.write(b"rogue")
        problems, _ = verify_store(spill.directory)
        assert any("layer-000001.slab" in p and "missing" in p
                   for p in problems)
        assert any("layer-000099.slab" in p and "not in the manifest" in p
                   for p in problems)

    def test_unsealed_store_reports_no_manifest(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        problems, _ = verify_store(str(directory))
        assert len(problems) == 1 and "manifest" in problems[0]

    def test_verify_record_follows_query_parent(self, tmp_path):
        spill = _sealed_store(tmp_path)
        ledger = RunLedger(str(tmp_path))
        capture = ledger.append(make_record("capture", results={
            "store": store_fingerprint(spill),
        }))
        query = ledger.append(make_record(
            "query", parent_run_id=capture["run_id"],
        ))
        assert verify_record(query, ledger) == []
        # break the parent's store; the query record now fails too
        with open(os.path.join(spill.directory, "static.slab"), "ab") as fh:
            fh.write(b"x")
        assert verify_record(query, ledger) != []

    def test_verify_record_flags_orphan_parent(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        query = ledger.append(make_record("query", parent_run_id="rgone"))
        problems = verify_record(query, ledger)
        assert any("rgone" in p for p in problems)

    def test_ledger_drift_vs_manifest(self, tmp_path):
        """Rewriting manifest + slab together still trips the ledger diff."""
        spill = _sealed_store(tmp_path)
        ledger = RunLedger(str(tmp_path))
        record = ledger.append(make_record("capture", results={
            "store": store_fingerprint(spill),
        }))
        # tamper, then re-stamp the manifest so it matches the tampered
        # slab (an attacker covering their tracks on disk)
        slab = os.path.join(spill.directory, "layer-000000.slab")
        with open(slab, "ab") as fh:
            fh.write(b"y")
        from repro.obs.ledger import digest_file

        manifest = read_manifest(spill.directory)
        manifest["slabs"]["layer-000000.slab"] = {
            "sha256": digest_file(slab), "bytes": os.path.getsize(slab),
        }
        with open(os.path.join(spill.directory, MANIFEST_FILENAME), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh)
        problems = verify_record(record, ledger)
        assert any("ledger drift" in p for p in problems)


class TestComparison:
    def _record(self, wall, messages, digest="d1"):
        return make_record(
            "run", wall_seconds=wall,
            metrics={"supersteps": 5, "messages": messages,
                     "wall_seconds": wall},
            results={"values_sha256": digest},
        )

    def test_within_threshold_is_ok(self):
        cmp = compare_records(self._record(1.0, 100),
                              self._record(1.05, 100), threshold=0.10)
        assert not cmp["regressed"]
        assert cmp["values_digests_match"] is True
        assert cmp["metrics"]["messages"]["delta"] == 0

    def test_over_threshold_regresses(self):
        cmp = compare_records(self._record(1.0, 100),
                              self._record(1.5, 120), threshold=0.10)
        assert cmp["regressed"]
        assert cmp["metrics"]["messages"]["ratio"] == pytest.approx(1.2)
        text = render_comparison(cmp)
        assert "REGRESSED" in text

    def test_digest_mismatch_is_reported(self):
        cmp = compare_records(self._record(1.0, 100, "d1"),
                              self._record(1.0, 100, "d2"))
        assert cmp["values_digests_match"] is False
        assert "DIFFER" in render_comparison(cmp)

    def test_manifest_digest_depends_only_on_hashes(self):
        slabs_a = {"x.slab": {"sha256": "aa", "bytes": 1}}
        slabs_b = {"x.slab": {"sha256": "aa", "bytes": 2}}
        assert manifest_digest(slabs_a) == manifest_digest(slabs_b)
        slabs_c = {"x.slab": {"sha256": "bb", "bytes": 1}}
        assert manifest_digest(slabs_a) != manifest_digest(slabs_c)


class TestLibraryOptIn:
    def test_engine_config_ledger_dir_records_runs(self, tmp_path):
        from repro.analytics.sssp import SSSP
        from repro.core.ariadne import Ariadne
        from repro.engine.config import EngineConfig

        g = with_random_weights(web_graph(30, seed=5), seed=5)
        config = EngineConfig(ledger_dir=str(tmp_path / "ledger"))
        ariadne = Ariadne(g, SSSP(source=0), config)
        ariadne.baseline()
        result = ariadne.capture(spill_directory=str(tmp_path / "prov"))
        result.spill.seal_all()
        from repro.core import queries as Q

        ariadne.query_offline(result.store, Q.SSSP_WCC_STABILITY_QUERY)
        ledger = RunLedger(config.ledger_dir)
        commands = [r["command"] for r in ledger.records()]
        assert commands == ["baseline", "capture", "offline-query"]
        baseline, capture, offline = ledger.records()
        assert baseline["results"]["values_sha256"] == \
            capture["results"]["values_sha256"]
        assert capture["dataset"]["edges_sha256"] == \
            baseline["dataset"]["edges_sha256"]
        assert offline["query"]["sha256"]
        assert baseline["config"]["ledger_dir"] == config.ledger_dir

    def test_no_ledger_dir_records_nothing(self, tmp_path):
        from repro.analytics.sssp import SSSP
        from repro.core.ariadne import Ariadne

        g = with_random_weights(web_graph(20, seed=6), seed=6)
        Ariadne(g, SSSP(source=0)).baseline()
        assert not list(tmp_path.iterdir())
