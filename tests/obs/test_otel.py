"""Tests for OTLP-JSON trace export (repro.obs.otel)."""

import json

from repro.obs.otel import (
    SCOPE_NAME,
    decode_attributes,
    encode_attributes,
    from_otlp_json,
    to_otlp_json,
    validate_otlp,
)
from repro.obs.sinks import InMemorySink, meta_event, validate_events
from repro.obs.trace import Tracer

RUN_ID = "rdeadbeef0123cafe"


def _events():
    """A small hand-built trace: two nested spans, a root span, an instant."""
    return [
        meta_event(RUN_ID),
        {"type": "span", "name": "run", "cat": "run", "id": 1,
         "parent": None, "ts": 1000, "dur": 900,
         "attrs": {"backend": "serial", "num_workers": 4}},
        {"type": "span", "name": "superstep", "cat": "superstep", "id": 2,
         "parent": 1, "ts": 1100, "dur": 300,
         "attrs": {"superstep": 0, "active": True, "frontier_fraction": 0.5}},
        {"type": "span", "name": "seal", "cat": "spill", "id": 3,
         "parent": None, "ts": 1500, "dur": 50, "attrs": {}},
        {"type": "instant", "name": "halt", "cat": "run", "ts": 1900,
         "attrs": {"reason": "converged"}},
    ]


def _spans(otlp):
    return otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]


class TestExport:
    def test_document_structure(self):
        otlp = to_otlp_json(_events())
        (rs,) = otlp["resourceSpans"]
        (ss,) = rs["scopeSpans"]
        assert ss["scope"]["name"] == SCOPE_NAME
        assert len(ss["spans"]) == 4  # 3 spans + 1 instant

    def test_ids_are_hex_and_linked(self):
        spans = _spans(to_otlp_json(_events()))
        by_name = {s["name"]: s for s in spans}
        assert by_name["run"]["spanId"] == format(1, "016x")
        assert by_name["superstep"]["parentSpanId"] == by_name["run"]["spanId"]
        assert "parentSpanId" not in by_name["run"]
        assert all(len(s["traceId"]) == 32 for s in spans)
        assert len({s["traceId"] for s in spans}) == 1

    def test_instant_becomes_zero_duration_span(self):
        spans = _spans(to_otlp_json(_events()))
        halt = next(s for s in spans if s["name"] == "halt")
        assert halt["startTimeUnixNano"] == halt["endTimeUnixNano"]
        attrs = decode_attributes(halt["attributes"])
        assert attrs["repro.instant"] is True
        # synthetic id lives above the real span-id range
        assert int(halt["spanId"], 16) == 4

    def test_timestamps_are_nano_strings(self):
        spans = _spans(to_otlp_json(_events()))
        run = next(s for s in spans if s["name"] == "run")
        assert run["startTimeUnixNano"] == str(1000 * 1000)
        assert run["endTimeUnixNano"] == str((1000 + 900) * 1000)

    def test_resource_carries_run_id_and_schema(self):
        otlp = to_otlp_json(_events())
        resource = decode_attributes(
            otlp["resourceSpans"][0]["resource"]["attributes"]
        )
        assert resource["repro.run_id"] == RUN_ID
        assert resource["service.name"] == "repro"
        assert resource["repro.schema"] == meta_event()["schema"]

    def test_attribute_types_survive_encoding(self):
        attrs = {"b": True, "i": 7, "f": 0.25, "s": "x", "o": (1, 2)}
        back = decode_attributes(encode_attributes(attrs))
        assert back["b"] is True
        assert back["i"] == 7 and isinstance(back["i"], int)
        assert back["f"] == 0.25
        assert back["s"] == "x"
        assert back["o"] == repr((1, 2))  # documented lossy fallback

    def test_document_is_json_serializable(self):
        json.dumps(to_otlp_json(_events()))


class TestTraceId:
    def test_stable_for_same_run_id(self):
        a = _spans(to_otlp_json(_events()))[0]["traceId"]
        b = _spans(to_otlp_json(_events()))[0]["traceId"]
        assert a == b

    def test_differs_across_run_ids(self):
        a = _spans(to_otlp_json(_events(), run_id="r1111aaaa2222bbbb"))
        b = _spans(to_otlp_json(_events(), run_id="r3333cccc4444dddd"))
        assert a[0]["traceId"] != b[0]["traceId"]

    def test_content_derived_without_run_id(self):
        events = [e for e in _events() if e["type"] != "meta"]
        a = _spans(to_otlp_json(events))[0]["traceId"]
        b = _spans(to_otlp_json(events))[0]["traceId"]
        assert a == b and int(a, 16) != 0


class TestRoundTrip:
    def test_hand_built_events_round_trip(self):
        events = _events()
        back = from_otlp_json(to_otlp_json(events))
        assert back[0]["type"] == "meta"
        assert back[0]["run_id"] == RUN_ID
        assert back[1:] == events[1:]

    def test_tracer_events_round_trip(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        sink.emit(meta_event(RUN_ID))
        with tracer.span("run", "run", backend="serial"):
            with tracer.span("superstep", "superstep", superstep=0):
                tracer.event("frontier", "superstep", size=12)
            tracer.record("seal", "spill", 0.001, layer=0)
        events = sink.events
        assert validate_events(events) == []
        otlp = to_otlp_json(events)
        assert validate_otlp(otlp) == []
        back = from_otlp_json(otlp)
        # same multiset of span/instant events (export groups spans before
        # instants, so order differs; content must not)
        key = lambda e: (e["type"], e.get("id", -1), e["name"])
        assert sorted(back[1:], key=key) == sorted(events[1:], key=key)
        assert validate_events(back) == []


class TestValidate:
    def test_valid_document_passes(self):
        assert validate_otlp(to_otlp_json(_events())) == []

    def test_empty_document_fails(self):
        assert validate_otlp({}) == ["document has no resourceSpans"]
        problems = validate_otlp({"resourceSpans": []})
        assert any("no spans" in p for p in problems)

    def test_bad_hex_ids_are_reported(self):
        otlp = to_otlp_json(_events())
        spans = _spans(otlp)
        spans[0]["spanId"] = "xyz"
        spans[1]["traceId"] = "00"
        problems = validate_otlp(otlp)
        assert any("bad spanId" in p for p in problems)
        assert any("bad traceId" in p for p in problems)

    def test_zero_id_is_invalid(self):
        otlp = to_otlp_json(_events())
        _spans(otlp)[0]["spanId"] = "0" * 16
        assert any("all-zero" in p for p in validate_otlp(otlp))

    def test_duplicate_span_ids_are_reported(self):
        otlp = to_otlp_json(_events())
        spans = _spans(otlp)
        spans[1]["spanId"] = spans[0]["spanId"]
        assert any("duplicate spanId" in p for p in validate_otlp(otlp))

    def test_orphan_parent_is_reported(self):
        otlp = to_otlp_json(_events())
        _spans(otlp)[1]["parentSpanId"] = "f" * 16
        assert any("does not match any span" in p
                   for p in validate_otlp(otlp))

    def test_time_travel_is_reported(self):
        otlp = to_otlp_json(_events())
        span = _spans(otlp)[0]
        span["endTimeUnixNano"] = str(int(span["startTimeUnixNano"]) - 1)
        assert any("endTimeUnixNano < start" in p
                   for p in validate_otlp(otlp))

    def test_mixed_trace_ids_are_reported(self):
        otlp = to_otlp_json(_events())
        _spans(otlp)[0]["traceId"] = "ab" * 16
        assert any("distinct traceIds" in p for p in validate_otlp(otlp))

    def test_missing_status_is_reported(self):
        otlp = to_otlp_json(_events())
        del _spans(otlp)[0]["status"]
        assert any("status.code" in p for p in validate_otlp(otlp))
