"""Property-based tests (hypothesis) for core invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytics.error import lp_norm, normalized_error
from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.core import queries as Q
from repro.engine.engine import run_program
from repro.graph.digraph import DiGraph
from repro.graph.stats import (
    single_source_shortest_paths,
    weakly_connected_components,
)
from repro.provenance.graphview import unfold
from repro.provenance.model import freeze
from repro.runtime.offline import run_layered, run_naive, run_reference
from repro.runtime.online import run_online
from repro.sizemodel import estimate_bytes

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
scalars = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=10,
)


@st.composite
def random_digraph(draw, max_vertices=24, weighted=False):
    n = draw(st.integers(2, max_vertices))
    density = draw(st.floats(0.05, 0.4))
    seed = draw(st.integers(0, 10_000))
    import random

    rng = random.Random(seed)
    g = DiGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                g.add_edge(u, v, rng.uniform(0.05, 1.0) if weighted else None)
    return g


# ---------------------------------------------------------------------------
# freeze / size model
# ---------------------------------------------------------------------------
class TestFreezeProperties:
    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_result_is_hashable(self, v):
        hash(freeze(v))

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, v):
        frozen = freeze(v)
        assert freeze(frozen) == frozen

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_equal_values_freeze_equal(self, a, b):
        if a == b:
            assert freeze(a) == freeze(b)


class TestSizeModelProperties:
    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_positive(self, v):
        assert estimate_bytes(v) >= 1

    @given(st.lists(scalars, max_size=6), scalars)
    @settings(max_examples=60, deadline=None)
    def test_monotone_under_extension(self, items, extra):
        assert estimate_bytes(tuple(items) + (extra,)) > estimate_bytes(
            tuple(items)
        )


class TestErrorMetricProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_self_error_is_zero(self, v):
        assert normalized_error(v, v, p=1) == 0.0
        assert normalized_error(v, v, p=2) == 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_norm_nonnegative_and_zero_iff_zero(self, v):
        n = lp_norm(v, 2)
        assert n >= 0.0
        if all(x == 0 for x in v):
            assert n == 0.0


# ---------------------------------------------------------------------------
# analytics vs oracles
# ---------------------------------------------------------------------------
class TestAnalyticOracles:
    @given(random_digraph(weighted=True))
    @SLOW
    def test_sssp_matches_dijkstra(self, g):
        result = run_program(g, SSSP(source=0).make_program())
        oracle = single_source_shortest_paths(g, 0)
        for v in g.vertices():
            expected = oracle.get(v, math.inf)
            assert result.values[v] == pytest.approx(expected, abs=1e-9)

    @given(random_digraph())
    @SLOW
    def test_wcc_matches_components(self, g):
        result = run_program(g, WCC().make_program())
        for component in weakly_connected_components(g):
            expected = min(component)
            for v in component:
                assert result.values[v] == expected

    @given(random_digraph())
    @SLOW
    def test_pagerank_approx_eps0_equals_exact(self, g):
        exact = PageRank(num_supersteps=8)
        approx = PageRank(num_supersteps=8, epsilon=0.0)
        r_exact = run_program(g, exact.make_program()).values
        r_approx = run_program(g, approx.make_program()).values
        for v in g.vertices():
            assert approx.provenance_value(r_approx[v]) == pytest.approx(
                exact.provenance_value(r_exact[v]), abs=1e-10
            )

    @given(random_digraph(weighted=True), st.floats(0.0, 0.5))
    @SLOW
    def test_approx_sssp_never_underestimates(self, g, eps):
        exact = run_program(g, SSSP(source=0).make_program()).values
        approx = run_program(
            g, SSSP(source=0, epsilon=eps).make_program()
        ).values
        for v in g.vertices():
            assert approx[v] >= exact[v] - 1e-9


# ---------------------------------------------------------------------------
# provenance and evaluation-mode equivalence
# ---------------------------------------------------------------------------
class TestProvenanceProperties:
    @given(random_digraph(weighted=True))
    @SLOW
    def test_message_edges_cross_one_layer(self, g):
        capture = run_online(
            g, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
        )
        unfolded = unfold(capture.store)
        for (src, dst, _m) in unfolded.message_edges:
            assert dst[1] == src[1] + 1
        # layers partition the nodes
        union = set()
        for layer in unfolded.layers():
            assert union.isdisjoint(layer)
            union |= layer
        assert union == unfolded.nodes

    @given(random_digraph(weighted=True), st.sampled_from(["q5", "q6", "apt"]))
    @SLOW
    def test_all_modes_agree(self, g, which):
        analytic = SSSP(source=0)
        if which == "q5":
            query, params, udfs = Q.SSSP_WCC_UPDATE_CHECK_QUERY, None, None
        elif which == "q6":
            query, params, udfs = Q.SSSP_WCC_STABILITY_QUERY, None, None
        else:
            query = Q.APT_QUERY
            params = {"eps": 0.1}
            udfs = Q.apt_udfs(analytic)
        online = run_online(g, analytic, query, params=params, udfs=udfs)
        store = run_online(
            g, analytic, Q.CAPTURE_FULL_QUERY, capture=True
        ).store
        layered = run_layered(store, query, g, params, udfs)
        naive = run_naive(store, query, g, params, udfs)
        reference = run_reference(store, query, g, params, udfs)
        for rel in reference.relations():
            expected = reference.rows(rel)
            assert online.query.rows(rel) == expected, f"online {rel}"
            assert layered.rows(rel) == expected, f"layered {rel}"
            assert naive.rows(rel) == expected, f"naive {rel}"

    @given(random_digraph(weighted=True))
    @SLOW
    def test_online_never_changes_analytic(self, g):
        analytic = SSSP(source=0)
        baseline = run_program(g, analytic.make_program()).values
        online = run_online(
            g, analytic, Q.APT_QUERY, params={"eps": 0.05},
            udfs=Q.apt_udfs(analytic),
        )
        assert online.values == baseline


class TestExtraAnalyticProperties:
    @given(random_digraph())
    @SLOW
    def test_kcore_bounded_by_degree(self, g):
        from repro.analytics.kcore import KCore

        analytic = KCore()
        result = run_program(g, analytic.make_program())
        cores = analytic.coreness(result.values)
        for v in g.vertices():
            degree = len(
                set(g.out_neighbors(v)) | set(g.in_neighbors(v))
            )
            assert 0 <= cores[v] <= degree

    @given(random_digraph())
    @SLOW
    def test_bfs_levels_match_oracle(self, g):
        from repro.analytics.bfs import BFS
        from repro.graph.stats import bfs_levels

        result = run_program(g, BFS(source=0).make_program())
        oracle = bfs_levels(g, 0, undirected=False)
        for v in g.vertices():
            assert result.values[v] == oracle.get(v, math.inf)

    @given(random_digraph())
    @SLOW
    def test_label_propagation_terminates_with_valid_labels(self, g):
        from repro.analytics.label_propagation import LabelPropagation

        analytic = LabelPropagation(max_rounds=6)
        result = run_program(g, analytic.make_program())
        vertices = set(g.vertices())
        assert all(label in vertices for label in result.values.values())
