"""Capture tests: full capture (Query 2), custom captures (Queries 3, 11)."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.engine.engine import run_program
from repro.graph.generators import web_graph, with_random_weights
from repro.provenance.graphview import unfold
from repro.runtime.online import run_online
from repro.sizemodel import graph_bytes


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(120, avg_degree=5, target_diameter=8, seed=31), seed=31
    )


@pytest.fixture(scope="module")
def full_capture(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    )


class TestFullCapture:
    def test_all_relations_present(self, full_capture):
        assert set(full_capture.store.relations()) >= {
            "value",
            "send_message",
            "receive_message",
            "superstep",
            "evolution",
        }

    def test_superstep_matches_activity(self, wgraph, full_capture):
        # every vertex is active at superstep 0
        layer0 = {
            x for (x, i) in full_capture.store.rows("superstep") if i == 0
        }
        assert layer0 == set(wgraph.vertices())

    def test_values_match_final_run(self, wgraph, full_capture):
        # the last captured value of each vertex equals the analytic result
        final = {}
        for x, d, i in full_capture.store.rows("value"):
            if x not in final or i > final[x][1]:
                final[x] = (d, i)
        for v, (d, _i) in final.items():
            assert d == pytest.approx(full_capture.values[v])

    def test_send_receive_are_duals(self, full_capture):
        sends = {
            (x, y, m, i) for x, y, m, i in full_capture.store.rows("send_message")
        }
        receives = {
            (y, x, m, i - 1)
            for x, y, m, i in full_capture.store.rows("receive_message")
        }
        assert sends == receives

    def test_evolution_links_consecutive_activations(self, full_capture):
        active = set(full_capture.store.rows("superstep"))
        for x, j, i in full_capture.store.rows("evolution"):
            assert j < i
            assert (x, j) in active and (x, i) in active

    def test_unfoldable(self, full_capture):
        g = unfold(full_capture.store)
        assert g.num_layers == full_capture.store.num_layers
        for (src, dst, _m) in g.message_edges:
            assert dst[1] == src[1] + 1

    def test_provenance_larger_than_input(self, wgraph, full_capture):
        # Table 3's qualitative claim: full provenance dwarfs the input.
        assert full_capture.store.total_bytes() > graph_bytes(wgraph)


class TestCustomCaptures:
    def test_fwd_lineage_smaller_than_full(self, wgraph, full_capture):
        custom = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": 0}, capture=True,
        )
        assert set(custom.store.relations()) == {"fwd_lineage"}
        assert custom.store.total_bytes() < full_capture.store.total_bytes()

    def test_fwd_lineage_covers_reachable_vertices(self, wgraph):
        custom = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": 0}, capture=True,
        )
        influenced = {x for x, _v, _i in custom.store.rows("fwd_lineage")}
        from repro.graph.stats import bfs_levels

        reachable = set(bfs_levels(wgraph, 0, undirected=False))
        assert influenced == reachable

    def test_backward_custom_relations(self, wgraph):
        custom = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_BACKWARD_CUSTOM_QUERY,
            capture=True,
        )
        assert set(custom.store.relations()) == {
            "prov_value", "prov_send", "prov_edges",
        }
        # prov_edges mirrors the input graph
        edges = set(custom.store.rows("prov_edges"))
        assert edges == {(u, v) for u, v, _w in wgraph.edges()}
        # topology metadata survives into the store registry
        assert custom.store.registry.get("prov_edges").topology == "edge"

    def test_custom_backward_smaller_than_full(self, wgraph, full_capture):
        custom = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_BACKWARD_CUSTOM_QUERY,
            capture=True,
        )
        # Query 11 drops message payloads and receive edges (Section 6.3).
        assert custom.store.total_bytes() < full_capture.store.total_bytes()

    def test_capture_does_not_change_analytic(self, wgraph, full_capture):
        baseline = run_program(wgraph, SSSP(source=0).make_program())
        assert full_capture.values == baseline.values
