"""Online evaluation tests, centered on Theorem 5.4:

1. the analytic's result is unchanged by lockstep query evaluation, and
2. the query's online result equals its offline result over the captured
   provenance of the same run.
"""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.core import queries as Q
from repro.engine.engine import run_program
from repro.errors import PQLCompatibilityError
from repro.graph.generators import web_graph, with_random_weights
from repro.runtime.offline import run_reference
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def graph():
    return web_graph(150, avg_degree=5, target_diameter=8, seed=21)


@pytest.fixture(scope="module")
def wgraph(graph):
    return with_random_weights(graph, seed=21)


class TestTheorem54AnalyticUnchanged:
    def test_pagerank_values_identical(self, graph):
        analytic = PageRank(num_supersteps=10)
        baseline = run_program(graph, analytic.make_program())
        online = run_online(graph, analytic, Q.PAGERANK_CHECK_QUERY)
        for v in graph.vertices():
            assert online.values[v] == pytest.approx(
                baseline.values[v], abs=1e-12
            )

    def test_sssp_values_identical(self, wgraph):
        analytic = SSSP(source=0)
        baseline = run_program(wgraph, analytic.make_program())
        online = run_online(
            wgraph, analytic, Q.SSSP_WCC_UPDATE_CHECK_QUERY
        )
        assert online.values == baseline.values

    def test_superstep_count_identical(self, wgraph):
        analytic = SSSP(source=0)
        baseline = run_program(wgraph, analytic.make_program())
        online = run_online(wgraph, analytic, Q.SSSP_WCC_STABILITY_QUERY)
        assert online.analytic.num_supersteps == baseline.num_supersteps

    def test_query_messages_only_on_analytic_edges(self, wgraph):
        # The apt query ships `change` tables; total engine messages must
        # equal the analytic's (piggybacking adds no messages).
        analytic = SSSP(source=0)
        from repro.engine.config import EngineConfig

        baseline = run_program(
            wgraph, analytic.make_program(),
            config=EngineConfig(use_combiner=False),
        )
        online = run_online(
            wgraph, analytic, Q.APT_QUERY, params={"eps": 0.1},
            udfs=Q.apt_udfs(analytic),
        )
        assert (
            online.analytic.metrics.total_messages
            == baseline.metrics.total_messages
        )


class TestTheorem54QueryCorrect:
    def _online_equals_offline(self, graph, analytic, query, params=None,
                               udfs=None):
        online = run_online(graph, analytic, query, params=params, udfs=udfs)
        capture = run_online(
            graph, analytic, Q.CAPTURE_FULL_QUERY, capture=True
        )
        offline = run_reference(
            capture.store, query, graph=graph, params=params, udfs=udfs
        )
        assert online.query.relations() or offline.relations() == []
        for rel in set(online.query.relations()) | set(offline.relations()):
            assert online.query.rows(rel) == offline.rows(rel), rel

    def test_query4_pagerank(self, graph):
        self._online_equals_offline(
            graph, PageRank(num_supersteps=8), Q.PAGERANK_CHECK_QUERY
        )

    def test_query5_sssp(self, wgraph):
        self._online_equals_offline(
            wgraph, SSSP(source=0), Q.SSSP_WCC_UPDATE_CHECK_QUERY
        )

    def test_query6_wcc(self, graph):
        self._online_equals_offline(
            graph, WCC(), Q.SSSP_WCC_STABILITY_QUERY
        )

    def test_apt_sssp(self, wgraph):
        analytic = SSSP(source=0)
        self._online_equals_offline(
            wgraph, analytic, Q.APT_QUERY, params={"eps": 0.1},
            udfs=Q.apt_udfs(analytic),
        )

    def test_forward_lineage_recursion(self, wgraph):
        analytic = SSSP(source=0)
        online = run_online(
            wgraph, analytic, Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": 0},
        )
        capture = run_online(
            wgraph, analytic, Q.CAPTURE_FULL_QUERY, capture=True
        )
        offline = run_reference(
            capture.store, Q.CAPTURE_FWD_LINEAGE_QUERY, graph=wgraph,
            params={"source": 0},
        )
        assert online.query.rows("fwd_lineage") == offline.rows("fwd_lineage")
        # the source influences a non-trivial part of the graph
        assert len(online.query.vertices("fwd_lineage")) > 10


class TestOnlineRestrictions:
    def test_backward_query_rejected(self, wgraph):
        with pytest.raises(PQLCompatibilityError):
            run_online(
                wgraph, SSSP(source=0), Q.BACKWARD_LINEAGE_FULL_QUERY,
                params={"alpha": 0, "sigma": 3},
            )

    def test_remote_aggregate_rejected(self, graph):
        query = (
            "deg(X, count(Y)) :- receive_message(X, Y, M, I)."
            "spread(X, I) :- receive_message(X, Y, M, I), deg(Y, D), D > 2."
        )
        with pytest.raises(PQLCompatibilityError, match="aggregate"):
            run_online(graph, PageRank(num_supersteps=5), query)


class TestOnlineMechanics:
    def test_monitoring_query_fires_on_buggy_analytic(self, graph):
        # An analytic that messages a fixed vertex id regardless of edges:
        # Query 4 must flag receipts at vertices without in-edges.
        from repro.engine.vertex import VertexProgram
        from repro.graph.digraph import DiGraph

        g = DiGraph()
        g.add_edge(0, 1)
        g.add_vertex(2)  # no in-edges

        class Buggy(VertexProgram):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send(2, "oops")  # not a neighbor!
                ctx.vote_to_halt()

        result = run_online(g, Buggy(), Q.PAGERANK_CHECK_QUERY)
        assert result.query.rows("check_failed") == [(2, 0, 1)]

    def test_no_capture_store_by_default(self, graph):
        result = run_online(graph, PageRank(num_supersteps=5),
                            Q.PAGERANK_CHECK_QUERY)
        assert result.store is None
        assert result.query.mode == "online"
