"""Unit tests for the evaluation database views."""

import pytest

from repro.graph.digraph import from_edge_list
from repro.provenance.store import ProvenanceStore
from repro.runtime.db import OnlineDatabase, StoreDatabase


@pytest.fixture
def store():
    s = ProvenanceStore()
    s.add("value", (0, 1.0, 0))
    s.add("value", (0, 2.0, 1))
    s.add("superstep", (0, 0))
    return s


@pytest.fixture
def graph():
    return from_edge_list([(0, 1), (1, 2)])


class TestStoreDatabase:
    def test_reads_store_partitions(self, store, graph):
        db = StoreDatabase(store, graph)
        assert db.rows("value", 0) == {(0, 1.0, 0), (0, 2.0, 1)}
        assert db.rows("value", 5) == set()

    def test_time_sliced_reads(self, store, graph):
        db = StoreDatabase(store, graph)
        assert db.rows_at("value", 0, 1) == {(0, 2.0, 1)}

    def test_virtual_edge_relation(self, store, graph):
        db = StoreDatabase(store, graph)
        assert list(db.rows("edge", 0)) == [(0, 1)]
        assert sorted(db.all_rows("edge")) == [(0, 1), (1, 2)]
        assert list(db.rows("vertex", 1)) == [(1,)]

    def test_edge_relation_without_graph(self, store):
        db = StoreDatabase(store, None)
        assert list(db.rows("edge", 0)) == []
        assert list(db.all_rows("edge")) == []

    def test_derived_union_for_head_predicates(self, store, graph):
        db = StoreDatabase(store, graph, head_predicates={"value"})
        db.add("value", (0, 9.0, 2))
        rows = set(db.rows("value", 0))
        assert (0, 9.0, 2) in rows and (0, 1.0, 0) in rows

    def test_derived_separate_for_non_heads(self, store, graph):
        db = StoreDatabase(store, graph, head_predicates=set())
        db.add("custom", (0, 1))
        assert db.rows("custom", 0) == set()  # not a head: invisible as EDB
        assert db.derived.rows("custom", 0) == {(0, 1)}


class TestOnlineDatabase:
    def make(self, graph):
        return OnlineDatabase(graph, head_predicates={"derivedrel"},
                              stream_relations={"vertex_value"})

    def test_local_vs_remote_partitions(self, graph):
        db = self.make(graph)
        db.local.add("value", 0, (0, 1.0, 0))
        db.local.add("value", 1, (1, 5.0, 0))
        db.begin_vertex(0)
        assert db.rows("value", 0) == {(0, 1.0, 0)}
        # vertex 1's facts are NOT visible remotely unless shipped
        assert list(db.rows("value", 1)) == []
        db.merge_remote(0, 1, "value", [(1, 5.0, 0)])
        assert set(db.rows("value", 1)) == {(1, 5.0, 0)}

    def test_remote_partitions_keyed_by_receiver(self, graph):
        db = self.make(graph)
        db.merge_remote(0, 1, "t", [(1, "x")])
        db.begin_vertex(2)
        assert list(db.rows("t", 1)) == []  # vertex 2 received nothing
        db.begin_vertex(0)
        assert set(db.rows("t", 1)) == {(1, "x")}

    def test_stream_reset_per_vertex(self, graph):
        db = self.make(graph)
        db.begin_vertex(0)
        db.stream.add("vertex_value", 0, (0, 1.0))
        assert db.rows("vertex_value", 0) == {(0, 1.0)}
        db.begin_vertex(1)
        assert list(db.rows("vertex_value", 1)) == []

    def test_derived_visible_locally(self, graph):
        db = self.make(graph)
        db.begin_vertex(0)
        db.add("derivedrel", (0, 7))
        assert set(db.rows("derivedrel", 0)) == {(0, 7)}

    def test_static_relations(self, graph):
        db = self.make(graph)
        db.begin_vertex(0)
        assert list(db.rows("edge", 0)) == [(0, 1)]
        assert db.rows_at("edge", 0, 3) == [(0, 1)]

    def test_timed_local_reads(self, graph):
        db = self.make(graph)
        db.local.add_timed("value", 0, (0, 1.0, 0), 0)
        db.local.add_timed("value", 0, (0, 2.0, 1), 1)
        db.begin_vertex(0)
        assert list(db.rows_at("value", 0, 1)) == [(0, 2.0, 1)]
