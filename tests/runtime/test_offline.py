"""Offline evaluation tests: layered == naive == reference on the paper's
queries, spill round-trips, direction handling, memory budgets."""

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.errors import PQLCompatibilityError
from repro.graph.generators import web_graph, with_random_weights
from repro.provenance.spill import SpillManager
from repro.runtime.offline import (
    run_layered,
    run_layered_from_spill,
    run_naive,
    run_naive_from_spill,
    run_reference,
)
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(120, avg_degree=5, target_diameter=8, seed=41), seed=41
    )


@pytest.fixture(scope="module")
def sssp_store(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


def assert_modes_agree(store, query, graph, params=None, udfs=None,
                       relations=None):
    layered = run_layered(store, query, graph, params, udfs)
    naive = run_naive(store, query, graph, params, udfs)
    reference = run_reference(store, query, graph, params, udfs)
    rels = relations or set(reference.relations())
    for rel in rels:
        assert layered.rows(rel) == reference.rows(rel), f"layered {rel}"
        assert naive.rows(rel) == reference.rows(rel), f"naive {rel}"
    return layered, naive, reference


class TestModeEquivalence:
    def test_monitoring_query5(self, sssp_store, wgraph):
        assert_modes_agree(sssp_store, Q.SSSP_WCC_UPDATE_CHECK_QUERY, wgraph)

    def test_monitoring_query6(self, sssp_store, wgraph):
        assert_modes_agree(sssp_store, Q.SSSP_WCC_STABILITY_QUERY, wgraph)

    def test_apt_query(self, sssp_store, wgraph):
        analytic = SSSP(source=0)
        assert_modes_agree(
            sssp_store, Q.APT_QUERY, wgraph,
            params={"eps": 0.1}, udfs=Q.apt_udfs(analytic),
        )

    def test_backward_lineage(self, sssp_store, wgraph):
        sigma = sssp_store.max_superstep
        alpha = next(
            x for x, i in sssp_store.rows("superstep") if i == sigma
        )
        layered, naive, _ref = assert_modes_agree(
            sssp_store, Q.BACKWARD_LINEAGE_FULL_QUERY, wgraph,
            params={"alpha": alpha, "sigma": sigma},
        )
        assert layered.stats["direction"] == "backward"
        assert layered.count("back_trace") >= 1

    def test_forward_lineage(self, sssp_store, wgraph):
        assert_modes_agree(
            sssp_store, Q.CAPTURE_FWD_LINEAGE_QUERY, wgraph,
            params={"source": 0},
        )


class TestCustomBackward:
    def test_query12_equals_query10(self, wgraph, sssp_store):
        custom_store = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_BACKWARD_CUSTOM_QUERY,
            capture=True,
        ).store
        sigma = sssp_store.max_superstep
        alpha = next(
            x for x, i in sssp_store.rows("superstep") if i == sigma
        )
        params = {"alpha": alpha, "sigma": sigma}
        full = run_layered(
            sssp_store, Q.BACKWARD_LINEAGE_FULL_QUERY, wgraph, params
        )
        custom = run_layered(
            custom_store, Q.BACKWARD_LINEAGE_CUSTOM_QUERY, wgraph, params
        )
        # Section 6.3: the custom query returns the exact same lineage.
        assert custom.rows("back_trace") == full.rows("back_trace")
        assert custom.rows("back_lineage") == full.rows("back_lineage")


class TestUndirectedCustomBackward:
    def test_wcc_needs_symmetric_edges(self, wgraph):
        """WCC broadcasts along reverse edges; the undirected capture
        variant reproduces Query 10 exactly, the directed one cannot."""
        from repro.analytics.wcc import WCC

        full = run_online(
            wgraph, WCC(), Q.CAPTURE_FULL_QUERY, capture=True
        ).store
        undirected = run_online(
            wgraph, WCC(), Q.CAPTURE_BACKWARD_CUSTOM_UNDIRECTED_QUERY,
            capture=True,
        ).store
        sigma = full.max_superstep
        alpha = min(x for x, i in full.rows("superstep") if i == sigma)
        params = {"alpha": alpha, "sigma": sigma}
        q10 = run_layered(full, Q.BACKWARD_LINEAGE_FULL_QUERY, wgraph, params)
        q12 = run_layered(
            undirected, Q.BACKWARD_LINEAGE_CUSTOM_QUERY, wgraph, params
        )
        assert q10.rows("back_trace") == q12.rows("back_trace")
        assert undirected.registry.get("prov_edges").topology == "edge"


class TestSpillPaths:
    def test_layered_from_spill_matches_in_memory(self, sssp_store, wgraph):
        with SpillManager(sssp_store) as spill:
            spill.seal_all()
            spilled = run_layered_from_spill(
                spill, Q.SSSP_WCC_UPDATE_CHECK_QUERY, wgraph
            )
        in_memory = run_layered(
            sssp_store, Q.SSSP_WCC_UPDATE_CHECK_QUERY, wgraph
        )
        for rel in in_memory.relations():
            assert spilled.rows(rel) == in_memory.rows(rel)
        assert spilled.stats["from_spill"]

    def test_naive_from_spill_matches_in_memory(self, sssp_store, wgraph):
        with SpillManager(sssp_store) as spill:
            spill.seal_all()
            spilled = run_naive_from_spill(
                spill, Q.SSSP_WCC_STABILITY_QUERY, wgraph
            )
        in_memory = run_naive(sssp_store, Q.SSSP_WCC_STABILITY_QUERY, wgraph)
        for rel in in_memory.relations():
            assert spilled.rows(rel) == in_memory.rows(rel)


class TestRestrictionsAndBudgets:
    def test_naive_memory_budget(self, sssp_store, wgraph):
        with pytest.raises(MemoryError):
            run_naive(
                sssp_store, Q.SSSP_WCC_STABILITY_QUERY, wgraph,
                memory_budget_bytes=1,
            )

    def test_stream_queries_rejected_offline(self, sssp_store, wgraph):
        with pytest.raises(PQLCompatibilityError):
            run_layered(sssp_store, Q.CAPTURE_FULL_QUERY, wgraph)
        with pytest.raises(PQLCompatibilityError):
            run_naive(sssp_store, Q.CAPTURE_FULL_QUERY, wgraph)

    def test_mixed_query_rejected_layered(self, sssp_store, wgraph):
        mixed = (
            "t(X, I) :- superstep(X, I)."
            "f(X, I) :- receive_message(X, Y, M, I), t(Y, J), J < I."
            "b(X, I) :- send_message(X, Y, M, I), t(Y, J), J = I + 1."
        )
        with pytest.raises(PQLCompatibilityError):
            run_layered(sssp_store, mixed, wgraph)
        # ... but naive handles it
        result = run_naive(sssp_store, mixed, wgraph)
        assert result.count("t") > 0

    def test_naive_reports_unfolded_nodes(self, sssp_store, wgraph):
        result = run_naive(sssp_store, Q.SSSP_WCC_STABILITY_QUERY, wgraph)
        assert result.stats["unfolded_nodes"] > len(
            set(sssp_store.vertices())
        )

    def test_layered_reports_peak_layer(self, sssp_store, wgraph):
        result = run_layered(sssp_store, Q.SSSP_WCC_STABILITY_QUERY, wgraph)
        assert 0 < result.stats["peak_layer_rows"] < sssp_store.num_rows


class TestMemoryBudgetContrast:
    def test_layered_fits_where_naive_cannot(self, sssp_store, wgraph):
        """Section 5.1's scalability claim: the layered load unit is one
        layer, so a budget between the largest slab and the total sealed
        size lets layered evaluation run while naive fails to load."""
        with SpillManager(sssp_store) as spill:
            spill.seal_all()
            largest_slab = max(
                spill.layer_size(i) for i in spill.sealed_layers()
            )
            total = spill.total_sealed_bytes()
            assert largest_slab < total
            budget = (largest_slab + total) // 2

            result = run_layered_from_spill(
                spill, Q.SSSP_WCC_STABILITY_QUERY, wgraph,
                memory_budget_bytes=budget,
            )
            assert result.stats["peak_slab_bytes"] <= budget
            with pytest.raises(MemoryError):
                run_naive_from_spill(
                    spill, Q.SSSP_WCC_STABILITY_QUERY, wgraph,
                    memory_budget_bytes=budget,
                )

    def test_layered_budget_too_small_raises(self, sssp_store, wgraph):
        with SpillManager(sssp_store) as spill:
            spill.seal_all()
            with pytest.raises(MemoryError):
                run_layered_from_spill(
                    spill, Q.SSSP_WCC_STABILITY_QUERY, wgraph,
                    memory_budget_bytes=1,
                )
