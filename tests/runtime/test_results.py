"""Unit tests for the result containers."""

from repro.engine.engine import RunResult
from repro.engine.metrics import RunMetrics
from repro.pql.eval import TupleStore
from repro.runtime.results import OnlineRunResult, QueryResult


def make_query_result(**stats):
    ts = TupleStore()
    ts.add("safe", 0, (0, 1))
    ts.add("safe", 2, (2, 3))
    ts.add("unsafe", 1, (1, 1))
    return QueryResult(derived=ts, mode="online", stats=stats)


class TestQueryResult:
    def test_rows_sorted(self):
        result = make_query_result()
        assert result.rows("safe") == [(0, 1), (2, 3)]

    def test_count_and_vertices(self):
        result = make_query_result()
        assert result.count("safe") == 2
        assert result.vertices("safe") == {0, 2}
        assert result.count("missing") == 0

    def test_relations_includes_empty_heads(self):
        result = make_query_result(head_predicates=["safe", "unsafe", "never"])
        assert result.relations() == ["never", "safe", "unsafe"]
        assert result.count("never") == 0

    def test_relations_without_stats(self):
        result = make_query_result()
        assert result.relations() == ["safe", "unsafe"]

    def test_rows_at(self):
        result = make_query_result()
        assert result.rows_at("safe", 0) == [(0, 1)]
        assert result.rows_at("safe", 9) == []

    def test_as_dict(self):
        result = make_query_result()
        assert result.as_dict() == {
            "safe": [(0, 1), (2, 3)],
            "unsafe": [(1, 1)],
        }


class TestOnlineRunResult:
    def test_properties_delegate(self):
        run = RunResult(values={0: 1.5}, metrics=RunMetrics())
        run.metrics.wall_seconds = 2.5
        result = OnlineRunResult(analytic=run, query=make_query_result())
        assert result.values == {0: 1.5}
        assert result.wall_seconds == 2.5
        assert result.store is None
