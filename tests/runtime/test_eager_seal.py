"""Eager layer sealing during capture: completed layers reach the spill
manager at superstep barriers, not at run end."""

import os

import pytest

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.engine.config import EngineConfig
from repro.errors import EngineError
from repro.graph.generators import web_graph, with_random_weights
from repro.provenance.spill import rebuild_store
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def graph():
    return web_graph(100, avg_degree=4, target_diameter=7, seed=77)


def _store_dict(store):
    return {
        relation: sorted(store.rows(relation), key=repr)
        for relation in sorted(store.relations())
    }


class TestEagerSealing:
    def test_layers_sealed_during_run(self, graph, tmp_path):
        result = run_online(
            graph, PageRank(num_supersteps=6), Q.CAPTURE_FULL_QUERY,
            capture=True, spill_directory=str(tmp_path),
        )
        assert result.spill is not None
        # Layers were handed to the writer while the analytic ran; the
        # final seal_all only adds the static slab and any stragglers.
        assert result.query.stats["sealed_layers"] > 0
        result.spill.flush()
        sealed = set(result.spill.sealed_layers())
        assert sealed, "no layer slab written before seal_all"
        for superstep in sealed:
            assert os.path.exists(result.spill.slab_path(superstep))
        result.spill.seal_all()
        rebuilt = rebuild_store(result.spill)
        assert _store_dict(rebuilt) == _store_dict(result.store)
        assert rebuilt.total_bytes() == result.store.total_bytes()
        result.spill.close()

    def test_sync_raw_spill_round_trip(self, graph, tmp_path):
        config = EngineConfig(spill_async=False, spill_compression="raw")
        result = run_online(
            graph, PageRank(num_supersteps=4), Q.CAPTURE_FULL_QUERY,
            capture=True, spill_directory=str(tmp_path), config=config,
        )
        assert not result.spill.async_writes
        assert result.spill.compression == "raw"
        result.spill.seal_all()
        rebuilt = rebuild_store(result.spill)
        assert _store_dict(rebuilt) == _store_dict(result.store)
        result.spill.close()

    def test_early_halt_still_flushes_capture(self, tmp_path):
        # SSSP converges and halts before a fixed superstep budget; the
        # finish_capture flush must cover the final partial layer.
        wgraph = with_random_weights(
            web_graph(60, avg_degree=4, target_diameter=6, seed=5), seed=5
        )
        result = run_online(
            wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY,
            capture=True, spill_directory=str(tmp_path),
        )
        result.spill.seal_all()
        rebuilt = rebuild_store(result.spill)
        assert _store_dict(rebuilt) == _store_dict(result.store)
        result.spill.close()

    def test_no_spill_directory_means_no_manager(self, graph):
        result = run_online(
            graph, PageRank(num_supersteps=3), Q.CAPTURE_FULL_QUERY,
            capture=True,
        )
        assert result.spill is None
        assert result.query.stats["sealed_layers"] == 0


class TestParallelCaptureSpill:
    def test_parallel_backend_capture_round_trip(self, graph, tmp_path):
        config = EngineConfig(backend="parallel", num_workers=2)
        serial = run_online(
            graph, PageRank(num_supersteps=4), Q.CAPTURE_FULL_QUERY,
            capture=True,
        )
        parallel = run_online(
            graph, PageRank(num_supersteps=4), Q.CAPTURE_FULL_QUERY,
            capture=True, spill_directory=str(tmp_path), config=config,
        )
        # Workers never persist; the master re-derives and seals at the
        # end, so eager per-superstep sealing is disabled.
        assert parallel.query.stats["sealed_layers"] == 0
        parallel.spill.seal_all()
        rebuilt = rebuild_store(parallel.spill)
        assert _store_dict(rebuilt) == _store_dict(serial.store)
        parallel.spill.close()


class TestConfigValidation:
    def test_bad_compression_rejected(self):
        with pytest.raises(EngineError):
            EngineConfig(spill_compression="bogus").validate()

    def test_defaults_are_async_zlib(self):
        config = EngineConfig()
        config.validate()
        assert config.spill_async is True
        assert config.spill_compression == "zlib"
