"""The runtimes accept PQL source, parsed programs, and compiled queries."""

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.errors import PQLSemanticError
from repro.graph.generators import chain_graph
from repro.pql.analysis import compile_query
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.runtime.offline import run_layered, run_naive
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def graph():
    g = chain_graph(5)
    for i in range(4):
        g.set_edge_value(i, i + 1, 1.0)
    return g


@pytest.fixture(scope="module")
def store(graph):
    return run_online(
        graph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


class TestQueryInputForms:
    def test_online_accepts_source_text(self, graph):
        result = run_online(graph, SSSP(source=0),
                            Q.SSSP_WCC_STABILITY_QUERY)
        assert result.query.count("problem") == 0

    def test_online_accepts_parsed_program(self, graph):
        program = parse(Q.SSSP_WCC_STABILITY_QUERY)
        result = run_online(graph, SSSP(source=0), program)
        assert result.query.count("problem") == 0

    def test_online_accepts_compiled_query(self, graph):
        functions = FunctionRegistry()
        compiled = compile_query(
            parse(Q.SSSP_WCC_STABILITY_QUERY), functions=functions
        )
        result = run_online(graph, SSSP(source=0), compiled)
        assert result.query.count("problem") == 0

    def test_offline_accepts_program_with_params(self, store, graph):
        program = parse(Q.BACKWARD_LINEAGE_FULL_QUERY)
        result = run_layered(
            store, program, graph, params={"alpha": 4, "sigma": 4}
        )
        assert result.count("back_trace") >= 1

    def test_params_with_text(self, store, graph):
        result = run_naive(
            store, Q.BACKWARD_LINEAGE_FULL_QUERY, graph,
            params={"alpha": 4, "sigma": 4},
        )
        assert result.count("back_lineage") == 1

    def test_unbound_params_rejected(self, graph):
        with pytest.raises(PQLSemanticError, match="parameter"):
            run_online(graph, SSSP(source=0), Q.APT_QUERY)

    def test_vertex_program_accepted_directly(self, graph):
        # run_online takes a raw VertexProgram too (identity projector)
        result = run_online(
            graph, SSSP(source=0).make_program(),
            Q.SSSP_WCC_STABILITY_QUERY,
        )
        assert result.query.count("problem") == 0
