"""Unit tests for graph statistics (Table 2 characteristics)."""

import math

from repro.graph.digraph import DiGraph, from_edge_list
from repro.graph.generators import chain_graph, grid_graph, web_graph
from repro.graph.stats import (
    average_degree,
    bfs_levels,
    degree_histogram,
    eccentricity,
    estimate_average_diameter,
    max_degree_vertex,
    single_source_shortest_paths,
    weakly_connected_components,
)


class TestBFSAndDiameter:
    def test_bfs_levels_chain(self):
        g = chain_graph(5)
        levels = bfs_levels(g, 0, undirected=False)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_undirected_reaches_backwards(self):
        g = chain_graph(5)
        levels = bfs_levels(g, 4, undirected=True)
        assert levels[0] == 4

    def test_eccentricity(self):
        g = chain_graph(6)
        assert eccentricity(g, 0) == 5
        assert eccentricity(g, 3) == 3  # undirected: max(3, 2)

    def test_diameter_estimate_grid(self):
        g = grid_graph(5, 5)
        d = estimate_average_diameter(g, samples=25, seed=0)
        # True diameter is 8; average eccentricity lies between 4 and 8.
        assert 4.0 <= d <= 8.0

    def test_empty_graph(self):
        assert estimate_average_diameter(DiGraph()) == 0.0


class TestDegrees:
    def test_average_degree(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 0)])
        assert average_degree(g) == 1.0
        assert average_degree(DiGraph()) == 0.0

    def test_degree_histogram(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)])
        hist = degree_histogram(g, kind="out")
        assert hist == {2: 1, 1: 1, 0: 1}
        hist_in = degree_histogram(g, kind="in")
        assert hist_in == {0: 1, 1: 1, 2: 1}

    def test_max_degree_vertex(self):
        g = from_edge_list([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert max_degree_vertex(g, kind="out") == 0
        assert max_degree_vertex(g, kind="in") == 2


class TestComponents:
    def test_two_components(self):
        g = from_edge_list([(0, 1), (2, 3)])
        comps = sorted(sorted(c) for c in weakly_connected_components(g))
        assert comps == [[0, 1], [2, 3]]

    def test_direction_is_ignored(self):
        g = from_edge_list([(0, 1), (2, 1)])
        comps = weakly_connected_components(g)
        assert len(comps) == 1

    def test_web_graph_is_connected(self):
        g = web_graph(500, avg_degree=8, target_diameter=10, seed=1)
        assert len(weakly_connected_components(g)) == 1


class TestDijkstraOracle:
    def test_chain_distances(self):
        g = chain_graph(4)
        for i in range(3):
            g.set_edge_value(i, i + 1, 2.0)
        dist = single_source_shortest_paths(g, 0)
        assert dist == {0: 0.0, 1: 2.0, 2: 4.0, 3: 6.0}

    def test_missing_weight_defaults_to_one(self):
        g = chain_graph(3)
        dist = single_source_shortest_paths(g, 0)
        assert dist[2] == 2.0

    def test_picks_shorter_path(self):
        g = DiGraph()
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(2, 1, 1.0)
        dist = single_source_shortest_paths(g, 0)
        assert dist[1] == 2.0

    def test_unreachable_absent(self):
        g = from_edge_list([(0, 1)])
        g.add_vertex(9)
        dist = single_source_shortest_paths(g, 0)
        assert 9 not in dist
