"""Unit tests for the bipartite ratings graph."""

import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph


def make_small() -> BipartiteGraph:
    bg = BipartiteGraph(num_users=3, num_items=2)
    bg.add_rating(0, 0, 4.0)
    bg.add_rating(0, 1, 2.0)
    bg.add_rating(2, 1, 5.0)
    return bg


class TestBipartite:
    def test_requires_both_sides(self):
        with pytest.raises(GraphError):
            BipartiteGraph(0, 5)
        with pytest.raises(GraphError):
            BipartiteGraph(5, 0)

    def test_id_spaces(self):
        bg = make_small()
        assert bg.item_vertex(0) == 3
        assert bg.is_user_vertex(2)
        assert not bg.is_user_vertex(3)
        assert bg.is_item_vertex(4)
        assert not bg.is_item_vertex(5)

    def test_rating_bounds_checked(self):
        bg = make_small()
        with pytest.raises(GraphError):
            bg.add_rating(3, 0, 1.0)
        with pytest.raises(GraphError):
            bg.add_rating(0, 2, 1.0)

    def test_rating_roundtrip(self):
        bg = make_small()
        assert bg.rating(0, 0) == 4.0
        assert bg.num_ratings == 3
        with pytest.raises(GraphError):
            bg.rating(1, 0)

    def test_overwrite_rating(self):
        bg = make_small()
        bg.add_rating(0, 0, 1.0)
        assert bg.rating(0, 0) == 1.0
        assert bg.num_ratings == 3

    def test_user_ratings(self):
        bg = make_small()
        assert sorted(bg.user_ratings(0)) == [(0, 4.0), (1, 2.0)]
        assert bg.user_ratings(1) == []

    def test_to_digraph_edges_both_ways(self):
        bg = make_small()
        g = bg.to_digraph()
        assert g.num_vertices == 5
        assert g.num_edges == 2 * bg.num_ratings
        iv = bg.item_vertex(0)
        assert g.edge_value(0, iv) == 4.0
        assert g.edge_value(iv, 0) == 4.0

    def test_to_digraph_includes_isolated(self):
        bg = make_small()
        g = bg.to_digraph()
        # user 1 rated nothing but must still exist as a vertex
        assert 1 in g
        assert g.out_degree(1) == 0
