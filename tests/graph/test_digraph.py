"""Unit tests for the directed-graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, from_edge_list


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []

    def test_add_vertex_idempotent(self):
        g = DiGraph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.num_vertices == 1

    def test_add_edge_creates_vertices(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.num_edges == 1

    def test_add_edge_overwrites_value(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        assert g.num_edges == 1
        assert g.edge_value(0, 1) == 2.0

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge(0, 0)
        assert g.has_edge(0, 0)
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1

    def test_from_edge_list(self):
        g = from_edge_list([(0, 1), (1, 2)], vertices=[0, 1, 2, 3])
        assert g.num_vertices == 4
        assert g.num_edges == 2
        assert g.out_degree(3) == 0

    def test_len_matches_num_vertices(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert len(g) == g.num_vertices == 3


class TestAccess:
    def test_out_edges_and_neighbors(self):
        g = DiGraph()
        g.add_edge(0, 1, "w1")
        g.add_edge(0, 2, "w2")
        assert g.out_edges(0) == [(1, "w1"), (2, "w2")]
        assert g.out_neighbors(0) == [1, 2]

    def test_in_neighbors(self):
        g = from_edge_list([(0, 2), (1, 2)])
        assert sorted(g.in_neighbors(2)) == [0, 1]
        assert g.in_degree(2) == 2

    def test_degree_totals(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)])
        assert g.degree(1) == 3  # out: 0, 2; in: 0

    def test_unknown_vertex_raises(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.out_edges(42)
        with pytest.raises(GraphError):
            g.in_neighbors(42)

    def test_missing_edge_value_raises(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(GraphError):
            g.edge_value(1, 0)

    def test_set_edge_value(self):
        g = from_edge_list([(0, 1)])
        g.set_edge_value(0, 1, 3.5)
        assert g.edge_value(0, 1) == 3.5
        with pytest.raises(GraphError):
            g.set_edge_value(1, 0, 1.0)

    def test_edges_iteration_is_deterministic(self):
        g = DiGraph()
        for i in range(10):
            g.add_edge(i, (i + 1) % 10, i)
        assert list(g.edges()) == list(g.edges())


class TestDerivedGraphs:
    def test_reversed(self):
        g = from_edge_list([(0, 1), (1, 2)])
        r = g.reversed()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.num_vertices == g.num_vertices

    def test_reversed_preserves_values(self):
        g = DiGraph()
        g.add_edge(0, 1, 9.0)
        assert g.reversed().edge_value(1, 0) == 9.0

    def test_subgraph(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(0, 1)

    def test_copy_is_independent(self):
        g = from_edge_list([(0, 1)])
        dup = g.copy()
        dup.add_edge(1, 2)
        assert g.num_edges == 1
        assert dup.num_edges == 2

    def test_map_edge_values(self):
        g = DiGraph()
        g.add_edge(0, 1, 2.0)
        doubled = g.map_edge_values(lambda u, v, w: w * 2)
        assert doubled.edge_value(0, 1) == 4.0
        assert g.edge_value(0, 1) == 2.0
