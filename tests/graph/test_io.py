"""Unit tests for edge-list I/O."""

import pytest

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import movielens_like, web_graph, with_random_weights
from repro.graph.io import read_edge_list, read_ratings, write_edge_list, write_ratings


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, tmp_path):
        g = web_graph(100, avg_degree=4, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_edges == g.num_edges
        assert sorted((u, v) for u, v, _ in back.edges()) == sorted(
            (u, v) for u, v, _ in g.edges()
        )

    def test_roundtrip_weighted(self, tmp_path):
        g = with_random_weights(web_graph(50, avg_degree=4, seed=2), seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path, weighted=True)
        back = read_edge_list(path, weighted=True)
        for u, v, w in g.edges():
            assert back.edge_value(u, v) == pytest.approx(w)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% another\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected"):
            read_edge_list(path)

    def test_weighted_needs_three_columns(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            read_edge_list(path, weighted=True)


class TestRatingsIO:
    def test_roundtrip(self, tmp_path):
        bg = movielens_like(20, 10, 80, seed=1)
        path = tmp_path / "r.txt"
        write_ratings(bg, path)
        back = read_ratings(path, num_users=20, num_items=10)
        assert back.num_ratings == bg.num_ratings
        assert sorted(back.ratings()) == sorted(bg.ratings())

    def test_infer_dimensions(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 0 3.5\n2 4 1.0\n")
        bg = read_ratings(path)
        assert bg.num_users == 3
        assert bg.num_items == 5

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            read_ratings(path)
