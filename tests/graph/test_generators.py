"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    chain_graph,
    grid_graph,
    movielens_like,
    random_graph,
    star_graph,
    web_graph,
    with_random_weights,
)
from repro.graph.stats import (
    average_degree,
    degree_histogram,
    estimate_average_diameter,
)


class TestWebGraph:
    def test_size_and_degree(self):
        g = web_graph(1000, avg_degree=10, target_diameter=16, seed=1)
        assert g.num_vertices == 1000
        assert 8.0 <= average_degree(g) <= 11.0

    def test_deterministic_by_seed(self):
        a = web_graph(300, avg_degree=6, seed=5)
        b = web_graph(300, avg_degree=6, seed=5)
        assert list(a.edges()) == list(b.edges())
        c = web_graph(300, avg_degree=6, seed=6)
        assert list(a.edges()) != list(c.edges())

    def test_diameter_tracks_target(self):
        small = web_graph(1000, avg_degree=8, target_diameter=6, seed=2)
        large = web_graph(1000, avg_degree=8, target_diameter=24, seed=2)
        d_small = estimate_average_diameter(small, samples=8, seed=0)
        d_large = estimate_average_diameter(large, samples=8, seed=0)
        assert d_large > d_small

    def test_degree_skew(self):
        g = web_graph(1000, avg_degree=10, target_diameter=12, seed=3)
        hist = degree_histogram(g, kind="total")
        max_degree = max(hist)
        # Preferential attachment must produce hubs well above the mean.
        assert max_degree > 4 * average_degree(g)

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            web_graph(2)

    def test_no_self_loops(self):
        g = web_graph(300, avg_degree=6, seed=4)
        assert all(u != v for u, v, _ in g.edges())


class TestOtherGenerators:
    def test_random_graph(self):
        g = random_graph(100, 400, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges == 400

    def test_chain(self):
        g = chain_graph(4)
        assert g.num_edges == 3
        assert g.out_neighbors(0) == [1]
        assert g.out_degree(3) == 0

    def test_chain_bidirectional(self):
        g = chain_graph(4, bidirectional=True)
        assert g.num_edges == 6
        assert g.has_edge(1, 0)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        # interior vertices have right+down edges
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 4)
        assert g.out_degree(11) == 0

    def test_star(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.out_degree(0) == 5

    def test_with_random_weights(self):
        g = with_random_weights(chain_graph(10), 0.0, 1.0, seed=1)
        for _u, _v, w in g.edges():
            assert 0.0 <= w < 1.0

    def test_with_random_weights_deterministic(self):
        a = with_random_weights(chain_graph(10), seed=2)
        b = with_random_weights(chain_graph(10), seed=2)
        assert list(a.edges()) == list(b.edges())


class TestMovieLensLike:
    def test_shape(self):
        bg = movielens_like(50, 30, 400, num_features=5, seed=1)
        assert bg.num_users == 50
        assert bg.num_items == 30
        assert bg.num_ratings == 400

    def test_ratings_in_range(self):
        bg = movielens_like(40, 20, 300, seed=2)
        for _u, _i, r in bg.ratings():
            assert 0.0 <= r <= 5.0

    def test_popularity_skew(self):
        bg = movielens_like(100, 50, 1500, seed=3)
        counts = [0] * 50
        for _u, item, _r in bg.ratings():
            counts[item] += 1
        # Zipf-like: the most popular item far exceeds the median item.
        ordered = sorted(counts, reverse=True)
        assert ordered[0] > 3 * max(1, ordered[25])

    def test_deterministic(self):
        a = movielens_like(30, 20, 200, seed=4)
        b = movielens_like(30, 20, 200, seed=4)
        assert sorted(a.ratings()) == sorted(b.ratings())
