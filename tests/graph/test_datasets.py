"""Unit tests for the Table 2 dataset registry."""

import pytest

from repro.graph.datasets import (
    DEFAULT_WEB_SCALE,
    ML_20,
    WEB_DATASET_ORDER,
    WEB_DATASETS,
    env_scale,
    load_ml20,
    load_web_dataset,
)
from repro.graph.stats import average_degree


class TestRegistry:
    def test_all_paper_rows_present(self):
        assert WEB_DATASET_ORDER == ["IN-04", "UK-02", "AR-05", "UK-05"]
        for name in WEB_DATASET_ORDER:
            assert name in WEB_DATASETS

    def test_paper_numbers(self):
        uk02 = WEB_DATASETS["UK-02"]
        assert uk02.paper_vertices == 18_500_000
        assert uk02.paper_avg_degree == pytest.approx(16.01)

    def test_relative_scale_preserved(self):
        sizes = [
            WEB_DATASETS[n].scaled_vertices(DEFAULT_WEB_SCALE)
            for n in WEB_DATASET_ORDER
        ]
        assert sizes == sorted(sizes)  # IN-04 < UK-02 < AR-05 < UK-05


class TestGeneration:
    def test_generate_matches_degree(self):
        g = load_web_dataset("IN-04", scale=1.0 / 10000.0)
        spec = WEB_DATASETS["IN-04"]
        assert g.num_vertices == spec.scaled_vertices(1.0 / 10000.0)
        assert average_degree(g) == pytest.approx(spec.paper_avg_degree, rel=0.25)

    def test_generate_weighted(self):
        g = load_web_dataset("UK-02", scale=1.0 / 50000.0, weighted=True)
        for _u, _v, w in g.edges():
            assert 0.0 <= w < 1.0

    def test_ml20_shape(self):
        bg = load_ml20(num_features=5, scale=1.0 / 2000.0)
        assert bg.num_users >= 32
        assert bg.num_items >= 16
        assert bg.num_ratings >= bg.num_users * 4

    def test_ml20_deterministic(self):
        a = load_ml20(scale=1.0 / 4000.0)
        b = load_ml20(scale=1.0 / 4000.0)
        assert sorted(a.ratings()) == sorted(b.ratings())


class TestEnvScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert env_scale() == 0.5

    def test_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert env_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "-2")
        assert env_scale() == 1.0
