"""Unit tests for vertex partitioners."""

import pytest

from repro.errors import EngineError
from repro.graph.partition import (
    HashPartitioner,
    RangePartitioner,
    stable_hash,
)


class TestHashPartitioner:
    def test_assignment_in_range(self):
        p = HashPartitioner(4)
        for v in range(100):
            assert 0 <= p.worker_of(v) < 4

    def test_balance_on_dense_ints(self):
        p = HashPartitioner(4)
        parts = p.partition(list(range(1000)))
        sizes = [len(part) for part in parts]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1  # int hashing is perfectly even

    def test_deterministic(self):
        p = HashPartitioner(7)
        assert p.worker_of(123) == p.worker_of(123)

    def test_invalid_worker_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_ranges_are_contiguous(self):
        p = RangePartitioner(3, 9)
        assert [p.worker_of(v) for v in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_tail_goes_to_last_worker(self):
        p = RangePartitioner(4, 10)
        assert p.worker_of(9) == 3

    def test_rejects_non_int(self):
        p = RangePartitioner(2, 10)
        with pytest.raises(EngineError):
            p.worker_of("a")

    def test_rejects_empty(self):
        with pytest.raises(EngineError):
            RangePartitioner(2, 0)


class TestStableHash:
    """The salted-``hash()`` regression (satellite 1).

    Python randomizes ``hash(str)`` per process, so the old HashPartitioner
    assigned string-id vertices differently on every run — fatal for a
    forked multiprocess backend that bakes the routing map into each worker.
    These assignments are pinned: if they ever change, shard routing (and
    any persisted per-shard artifact) silently breaks.
    """

    PINNED = {
        "alpha": 2, "beta": 3, "gamma": 1, "delta": 1,
        "v-0": 3, "v-1": 1, "v-2": 3, "urn:n0": 1,
    }

    def test_pinned_string_assignments(self):
        p = HashPartitioner(4)
        assert {v: p.worker_of(v) for v in self.PINNED} == self.PINNED

    def test_stable_hash_values(self):
        assert stable_hash("alpha") == 3504355690
        assert stable_hash(b"alpha") == 3504355690
        assert stable_hash("urn:n0") == 1184700557

    def test_ints_hash_to_themselves(self):
        assert stable_hash(17) == 17
        assert stable_hash(0) == 0

    def test_bools_are_ints(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_stable_in_subprocess(self):
        """The same ids land on the same workers in a fresh interpreter
        (where the per-process hash salt differs)."""
        import json
        import subprocess
        import sys

        ids = sorted(self.PINNED)
        code = (
            "import json, sys\n"
            "from repro.graph.partition import HashPartitioner\n"
            "p = HashPartitioner(4)\n"
            f"print(json.dumps([p.worker_of(v) for v in {ids!r}]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={**__import__("os").environ, "PYTHONHASHSEED": "random"},
        ).stdout
        assert json.loads(out) == [self.PINNED[v] for v in ids]


class TestPartitionerProperties:
    """Balance/stability properties shared by both partitioners."""

    def test_hash_balance_on_string_ids(self):
        p = HashPartitioner(4)
        sizes = [len(s) for s in p.partition([f"v{i}" for i in range(1000)])]
        assert sum(sizes) == 1000
        # crc32 is uniform enough that no shard is more than 25% off even.
        assert max(sizes) <= 250 * 1.25 and min(sizes) >= 250 * 0.75

    def test_partition_is_exhaustive_and_disjoint(self):
        vertices = list(range(101))
        for p in (HashPartitioner(3), RangePartitioner(3, 101)):
            parts = p.partition(vertices)
            seen = [v for part in parts for v in part]
            assert sorted(seen) == vertices
            assert len(seen) == len(set(seen))

    def test_partition_preserves_input_order_within_shard(self):
        p = RangePartitioner(2, 10)
        parts = p.partition([9, 3, 0, 7, 1])
        assert parts == [[3, 0, 1], [9, 7]]

    def test_fewer_vertices_than_workers(self):
        """num_vertices < num_workers must yield (some) empty shards, not
        an error — the parallel engine spawns a worker per shard anyway."""
        hash_parts = HashPartitioner(8).partition([0, 1, 2])
        range_parts = RangePartitioner(8, 3).partition([0, 1, 2])
        for parts in (hash_parts, range_parts):
            assert len(parts) == 8
            assert sorted(v for part in parts for v in part) == [0, 1, 2]
        # range with chunk=1: vertex i -> worker i, tail workers empty
        assert range_parts[:3] == [[0], [1], [2]]
        assert all(part == [] for part in range_parts[3:])

    def test_stability_across_instances(self):
        a, b = HashPartitioner(5), HashPartitioner(5)
        for v in ["x", "y", 42, b"z"]:
            assert a.worker_of(v) == b.worker_of(v)
