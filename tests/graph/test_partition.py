"""Unit tests for vertex partitioners."""

import pytest

from repro.errors import EngineError
from repro.graph.partition import HashPartitioner, RangePartitioner


class TestHashPartitioner:
    def test_assignment_in_range(self):
        p = HashPartitioner(4)
        for v in range(100):
            assert 0 <= p.worker_of(v) < 4

    def test_balance_on_dense_ints(self):
        p = HashPartitioner(4)
        parts = p.partition(list(range(1000)))
        sizes = [len(part) for part in parts]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1  # int hashing is perfectly even

    def test_deterministic(self):
        p = HashPartitioner(7)
        assert p.worker_of(123) == p.worker_of(123)

    def test_invalid_worker_count(self):
        with pytest.raises(EngineError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_ranges_are_contiguous(self):
        p = RangePartitioner(3, 9)
        assert [p.worker_of(v) for v in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_tail_goes_to_last_worker(self):
        p = RangePartitioner(4, 10)
        assert p.worker_of(9) == 3

    def test_rejects_non_int(self):
        p = RangePartitioner(2, 10)
        with pytest.raises(EngineError):
            p.worker_of("a")

    def test_rejects_empty(self):
        with pytest.raises(EngineError):
            RangePartitioner(2, 0)
