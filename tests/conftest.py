"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import chain_graph, web_graph, with_random_weights


@pytest.fixture
def diamond() -> DiGraph:
    """0 -> {1, 2} -> 3 with unit weights (two equal-length paths)."""
    g = DiGraph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(0, 2, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(2, 3, 1.0)
    return g


@pytest.fixture
def weighted_chain() -> DiGraph:
    """0 -> 1 -> 2 -> 3 -> 4 with unit weights."""
    g = chain_graph(5)
    for i in range(4):
        g.set_edge_value(i, i + 1, 1.0)
    return g


@pytest.fixture
def small_web() -> DiGraph:
    """A small web-like graph for integration tests (deterministic)."""
    return web_graph(300, avg_degree=6, target_diameter=10, seed=11)


@pytest.fixture
def small_weighted_web(small_web: DiGraph) -> DiGraph:
    return with_random_weights(small_web, seed=11)
