"""The shipped .pql sample files must parse and compile."""

import glob
import os

import pytest

from repro.pql.analysis import compile_query
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry

QUERY_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "queries")
QUERY_FILES = sorted(glob.glob(os.path.join(QUERY_DIR, "*.pql")))


@pytest.mark.parametrize("path", QUERY_FILES, ids=os.path.basename)
def test_sample_query_compiles(path):
    with open(path, "r", encoding="utf-8") as fh:
        program = parse(fh.read())
    params = {name: 10 for name in program.parameters()}
    if params:
        program = program.bind(**params)
    compiled = compile_query(program, functions=FunctionRegistry())
    assert compiled.online_eligible


def test_samples_exist():
    assert len(QUERY_FILES) >= 2
