"""Unit tests for the benchmark infrastructure (reporting + harness)."""

import os

import pytest

from repro.bench.harness import ModeTimings, timed
from repro.bench.reporting import format_cell, format_table, publish, results_dir
from repro.bench.workloads import (
    NAIVE_DATASETS,
    analytic_for,
    bench_scale,
    ml20_for,
    repeats,
    web_graph_for,
)


class TestReporting:
    def test_format_cell(self):
        assert format_cell(5) == "5"
        assert format_cell(1234567) == "1,234,567"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.00123) == "1.23e-03"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(0) == "0"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        table = format_table(
            "T", ["a", "bb"], [(1, 2.0), ("long-cell", 3.5)]
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        # all rows share the same width grid
        assert len(lines[2]) == len(lines[3]) or lines[2].rstrip()
        assert "long-cell" in lines[-1]

    def test_publish_writes_file(self, capsys):
        publish("unit_test_table", "Title\n=====\ncontent")
        out = capsys.readouterr().out
        assert "content" in out
        path = os.path.join(results_dir(), "unit_test_table.txt")
        assert os.path.exists(path)
        os.unlink(path)


class TestHarness:
    def test_timed_returns_positive(self):
        assert timed(lambda: sum(range(100)), n=3) > 0.0

    def test_mode_timings_over(self):
        timings = ModeTimings(baseline=2.0, online=3.0)
        assert timings.over(timings.online) == 1.5
        assert timings.over(None) is None
        zero = ModeTimings(baseline=0.0)
        assert zero.over(1.0) == float("inf")


class TestWorkloads:
    def test_graph_cache_returns_same_object(self):
        a = web_graph_for("IN-04")
        b = web_graph_for("IN-04")
        assert a is b
        w = web_graph_for("IN-04", weighted=True)
        assert w is not a

    def test_ml_cache(self):
        assert ml20_for(5) is ml20_for(5)

    def test_analytic_for(self):
        analytic, graph = analytic_for("sssp", "IN-04")
        assert analytic.name.startswith("sssp")
        # weighted graph for SSSP
        assert all(w is not None for _u, _v, w in graph.edges())
        with pytest.raises(ValueError):
            analytic_for("nope", "IN-04")

    def test_scale_positive(self):
        assert bench_scale() > 0

    def test_naive_datasets_are_smallest(self):
        assert NAIVE_DATASETS == ("IN-04", "UK-02")

    def test_repeats_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_REPEATS", raising=False)
        assert repeats() == 1
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "5")
        assert repeats() == 5
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "zero")
        assert repeats(3) == 3


class TestMeasureQueryModes:
    def test_populates_all_modes(self):
        from repro.analytics.sssp import SSSP
        from repro.bench.harness import measure_query_modes
        from repro.core import queries as Q
        from repro.graph.generators import chain_graph

        g = chain_graph(6)
        for i in range(5):
            g.set_edge_value(i, i + 1, 1.0)
        timings = measure_query_modes(
            g, SSSP(source=0), Q.SSSP_WCC_STABILITY_QUERY
        )
        assert timings.baseline > 0
        assert timings.online > 0
        assert timings.capture > 0  # measured because no store was passed
        assert timings.layered > 0
        assert timings.naive > 0
        assert timings.over(timings.online) > 0

    def test_skips_requested_modes(self):
        from repro.analytics.sssp import SSSP
        from repro.bench.harness import measure_query_modes
        from repro.core import queries as Q
        from repro.graph.generators import chain_graph

        g = chain_graph(4)
        timings = measure_query_modes(
            g, SSSP(source=0), Q.SSSP_WCC_STABILITY_QUERY,
            with_naive=False, with_online=False,
        )
        assert timings.online is None
        assert timings.naive is None
        assert timings.over(timings.naive) is None
