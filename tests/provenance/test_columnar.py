"""ARSC columnar codec: lanes, round-trips, probes, corrupt slabs, fuzz.

The codec's contract: every chunk dict the sealers produce round-trips
*exactly* — including concrete value types (``1`` vs ``1.0`` vs ``True``
share a hash, so a lane that loses the type would corrupt stores) — and
every structural violation of the on-disk format surfaces as a
:class:`ProvenanceError` naming the format and path, never a raw
``struct.error``.
"""

import pickle
import struct
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.pql.index import MIN_INDEX_ROWS
from repro.provenance.columnar import (
    LANE_F64,
    LANE_I64,
    LANE_PKL,
    LANE_STR,
    ColumnarSlab,
    _pick_lane,
    encode_columnar_slab,
    is_columnar,
    validate_columnar_file,
)

COMPRESSIONS = ("raw", "zlib")


def roundtrip(chunks, compression="zlib"):
    blob, _raw = encode_columnar_slab(chunks, compression)
    return ColumnarSlab("<memory>", data=blob)


def expected_chunks(chunks):
    """What decode must return: empty partitions dropped, sets of rows."""
    return {
        rel: {v: set(rows) for v, rows in by_vertex.items() if rows}
        for rel, by_vertex in chunks.items()
    }


def typed_rows(rows):
    """Rows with concrete types made visible, so ``1`` vs ``True`` vs
    ``1.0`` drift fails the comparison that plain set equality hides."""
    return sorted(
        (tuple((type(v).__name__, v) for v in row) for row in rows),
        key=repr,
    )


class TestLaneSelection:
    @pytest.mark.parametrize("values,lane", [
        ([1, 2, -5], LANE_I64),
        ([2 ** 63 - 1, -(2 ** 63)], LANE_I64),
        ([2 ** 63], LANE_PKL),            # overflows i64
        ([1.5, float("inf")], LANE_F64),
        (["a", "b", "a"], LANE_STR),
        ([True, False], LANE_PKL),        # bool is not int here
        ([1, True], LANE_PKL),            # mixed concrete types
        ([1, 1.0], LANE_PKL),
        ([None, None], LANE_PKL),
        ([(1, 2), (3, 4)], LANE_PKL),
        ([1, "a"], LANE_PKL),
    ])
    def test_pick_lane(self, values, lane):
        assert _pick_lane(values) == lane


class TestRoundTrip:
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    def test_mixed_lanes(self, compression):
        chunks = {
            "value": {
                0: {(0, 1.5, 0), (0, 2.5, 1)},
                1: {(1, 0.5, 0)},
            },
            "label": {
                0: {("a", 0)},
                "v2": {("b", 1), ("ü\n", 2)},
            },
            "odd": {
                0: {(True, None, 2 ** 80), ((1, "x"), 0.0, -1)},
            },
            "hollow": {},                       # empty relation survives
            "dead": {5: set()},                 # empty partition dropped
        }
        slab = roundtrip(chunks, compression)
        assert slab.to_chunks() == expected_chunks(chunks)
        assert slab.compression == compression

    def test_exact_types_preserved(self):
        chunks = {"r": {0: {(True, 1.0, "1")}, 1: {(1, 2.0, "x")}}}
        slab = roundtrip(chunks)
        for vertex in (0, 1):
            got = typed_rows(slab.group_rows("r", vertex))
            want = typed_rows(chunks["r"][vertex])
            assert got == want

    def test_meta_rides_in_footer(self):
        meta = {"schemas": {"v": "schema-object"}, "num_layers": 7}
        chunks = {"\x00meta": meta, "r": {0: {(1,)}}}
        slab = roundtrip(chunks)
        assert slab.meta == meta
        assert slab.to_chunks()["\x00meta"] == meta

    def test_unicode_dictionary_lane(self):
        strings = ["", "héllo", "日本語", "a\x00b", "\udc80\udcff", "héllo"]
        chunks = {"s": {0: {(s, i) for i, s in enumerate(strings)}}}
        slab = roundtrip(chunks)
        assert slab.group_rows("s", 0) == chunks["s"][0]
        assert list(slab.lanes("s")) == ["str", "i64"]

    def test_non_scalar_vertex_keys(self):
        chunks = {"r": {("w", 3): {(1, 2)}, None: {(3, 4)}}}
        slab = roundtrip(chunks)
        assert set(slab.groups("r")) == {("w", 3), None}
        assert slab.group_rows("r", None) == {(3, 4)}


class TestLazyAccounting:
    def _chunks(self, rows=64):
        return {
            "wide": {0: {(i, float(i), f"s{i % 5}", i % 3) for i in range(rows)}},
            "other": {0: {(i, i) for i in range(rows)}},
        }

    def test_open_decodes_nothing(self):
        slab = roundtrip(self._chunks())
        assert slab.decoded_bytes == 0
        assert slab.row_count("wide") == 64       # footer-only
        assert slab.total_rows() == 128
        assert slab.raw_bytes() > 0
        assert slab.decoded_bytes == 0

    def test_groups_decode_only_keys(self):
        slab = roundtrip(self._chunks())
        slab.groups("wide")
        after_keys = slab.decoded_bytes
        assert 0 < after_keys < slab.raw_bytes("wide")
        slab.column("wide", 0)
        assert slab.decoded_bytes > after_keys

    def test_single_column_scan_is_partial(self):
        slab = roundtrip(self._chunks())
        slab.column("other", 0)
        assert slab.decoded_bytes < slab.raw_bytes() // 2


class TestProbe:
    def _slab(self, rows=4 * MIN_INDEX_ROWS):
        chunks = {"r": {0: {(0, i, float(i % 7), f"k{i % 3}")
                           for i in range(rows)}}}
        return chunks, roundtrip(chunks)

    def test_probe_matches_brute_force(self):
        chunks, slab = self._slab()
        pattern, key = (0, 3), (0, "k1")
        hits = slab.probe("r", pattern, key)
        want = {row for row in chunks["r"][0]
                if (row[0], row[3]) == key}
        assert set(hits) == want

    def test_probe_miss_returns_empty(self):
        _chunks, slab = self._slab()
        assert slab.probe("r", (1,), (10 ** 9,)) == ()
        assert slab.probe("absent", (0,), (0,)) == ()

    def test_small_partition_declines(self):
        slab = roundtrip({"r": {0: {(i,) for i in range(MIN_INDEX_ROWS - 1)}}})
        assert slab.probe("r", (0,), (1,)) is None

    def test_probe_decodes_only_pattern_columns(self):
        _chunks, slab = self._slab()
        slab.probe("r", (1,), (-1,))          # miss: no rows materialized
        one_column = slab.decoded_bytes
        assert 0 < one_column < slab.raw_bytes("r") // 2


class TestCorruptSlabs:
    def _blob(self):
        blob, _ = encode_columnar_slab(
            {"r": {0: {(1, 2.0)}}}, "zlib",
        )
        return blob

    def test_magic_detection(self):
        assert is_columnar(self._blob())
        assert not is_columnar(b"ARSL\x01\x00")
        assert not is_columnar(b"")

    @pytest.mark.parametrize("mutate", [
        lambda b: b[: len(b) // 2],                      # torn write
        lambda b: b[:-4] + b"ARSX",                      # bad trailer magic
        lambda b: b[:8],                                 # header only
        lambda b: b[:-16] + struct.pack(
            "<QI4s", 2 ** 40, 10, b"ARSC"),              # footer out of range
    ], ids=["torn", "trailer-magic", "header-only", "footer-range"])
    def test_structural_corruption(self, mutate, tmp_path):
        path = tmp_path / "bad.slab"
        path.write_bytes(mutate(self._blob()))
        with pytest.raises(ProvenanceError) as err:
            validate_columnar_file(str(path))
        assert "columnar (ARSC)" in str(err.value)
        assert "bad.slab" in str(err.value)
        with pytest.raises(ProvenanceError):
            ColumnarSlab(str(path))

    def test_garbage_footer_payload(self, tmp_path):
        blob = self._blob()
        off, length, magic = struct.unpack("<QI4s", blob[-16:])
        garbage = zlib.compress(b"not a pickle")
        bad = blob[:off] + garbage + struct.pack(
            "<QI4s", off, len(garbage), magic)
        path = tmp_path / "bad.slab"
        path.write_bytes(bad)
        with pytest.raises(ProvenanceError, match=r"columnar \(ARSC\)"):
            ColumnarSlab(str(path))

    def test_mmap_open_reads_file(self, tmp_path):
        path = tmp_path / "ok.slab"
        path.write_bytes(self._blob())
        with ColumnarSlab(str(path)) as slab:
            assert slab.group_rows("r", 0) == {(1, 2.0)}


# ---------------------------------------------------------------------------
# hypothesis fuzz: arbitrary chunk dicts round-trip exactly
# ---------------------------------------------------------------------------
scalars = st.one_of(
    st.integers(),                       # includes > 64-bit magnitudes
    st.floats(allow_nan=False),
    st.text(max_size=8),                 # unicode, empty strings
    st.booleans(),
    st.none(),
    st.tuples(st.integers(), st.text(max_size=3)),
)

vertex_keys = st.one_of(st.integers(), st.text(max_size=4))


@st.composite
def chunk_dicts(draw):
    relations = {}
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        arity = draw(st.integers(min_value=1, max_value=4))
        rows = st.sets(st.tuples(*[scalars] * arity), max_size=6)
        by_vertex = {}
        for vertex in draw(st.lists(vertex_keys, max_size=3, unique=True)):
            by_vertex[vertex] = draw(rows)
        relations[f"rel{index}"] = by_vertex
    return relations


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=chunk_dicts(), compression=st.sampled_from(COMPRESSIONS))
def test_fuzz_roundtrip(chunks, compression):
    slab = roundtrip(chunks, compression)
    assert slab.to_chunks() == expected_chunks(chunks)
    for rel, by_vertex in chunks.items():
        for vertex, rows in by_vertex.items():
            if rows:
                got = slab.group_rows(rel, vertex)
                assert typed_rows(got) == typed_rows(rows)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=chunk_dicts())
def test_fuzz_survives_reserialization(chunks):
    """Encoding the decoded chunks again produces the same logical slab
    (byte stability across a migrate round-trip)."""
    first, _ = encode_columnar_slab(chunks, "zlib")
    decoded = ColumnarSlab("<memory>", data=first).to_chunks()
    second, _ = encode_columnar_slab(decoded, "zlib")
    again = ColumnarSlab("<memory>", data=second)
    assert again.to_chunks() == expected_chunks(chunks)
