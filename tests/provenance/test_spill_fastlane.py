"""Spill fast-lane tests: the framed slab codec, the asynchronous writer,
and failure semantics."""

import os
import pickle

import pytest

from repro.errors import ProvenanceError
from repro.provenance.model import RelationSchema, TOPO_EDGE
from repro.provenance.spill import (
    SPILL_COMPRESSIONS,
    SpillManager,
    rebuild_store,
)
from repro.provenance.store import ProvenanceStore


def _populated_store() -> ProvenanceStore:
    s = ProvenanceStore()
    s.registry.register(RelationSchema("prov_edges", 2, topology=TOPO_EDGE))
    for v in range(8):
        for t in range(3):
            s.add("value", (v, float(v) / (t + 1), t))
            s.add("superstep", (v, t))
        s.add("send_message", (v, (v + 1) % 8, "tag", 0))
        s.add("prov_edges", (v, (v + 1) % 8))
    return s


def _store_dict(store):
    return {
        relation: sorted(store.rows(relation), key=repr)
        for relation in sorted(store.relations())
    }


class TestRoundTripMatrix:
    @pytest.mark.parametrize("async_writes", [False, True])
    @pytest.mark.parametrize("compression", SPILL_COMPRESSIONS)
    def test_seal_all_rebuild_identity(self, tmp_path, async_writes,
                                       compression):
        store = _populated_store()
        with SpillManager(
            store, directory=str(tmp_path),
            async_writes=async_writes, compression=compression,
        ) as spill:
            total = spill.seal_all()
            assert total == spill.bytes_spilled > 0
            rebuilt = rebuild_store(spill)
        assert _store_dict(rebuilt) == _store_dict(store)
        assert rebuilt.total_bytes() == store.total_bytes()
        assert rebuilt.registry.get("prov_edges").topology == TOPO_EDGE

    def test_zlib_smaller_than_raw(self, tmp_path):
        store = _populated_store()
        sizes = {}
        for compression in SPILL_COMPRESSIONS:
            directory = tmp_path / compression
            with SpillManager(
                store, directory=str(directory), compression=compression,
            ) as spill:
                sizes[compression] = spill.seal_all()
        assert sizes["zlib"] < sizes["raw"]

    def test_async_layer_readback_waits_for_writer(self, tmp_path):
        store = _populated_store()
        with SpillManager(
            store, directory=str(tmp_path), async_writes=True,
        ) as spill:
            for t in range(store.num_layers):
                spill.seal_layer_nowait(t)
            # load_layer flushes implicitly; no explicit flush() needed.
            assert spill.load_layer(1)["value"][0] == {(0, 0.0, 1)}

    def test_unknown_compression_rejected(self, tmp_path):
        with pytest.raises(ProvenanceError):
            SpillManager(
                _populated_store(), directory=str(tmp_path),
                compression="brotli",
            )


class TestLegacySlabs:
    def test_bare_pickle_layer_slab_still_loads(self, tmp_path):
        store = _populated_store()
        spill = SpillManager(store, directory=str(tmp_path))
        try:
            spill.seal_layer(1)
            layer = spill.load_layer(1)
            with open(spill.slab_path(1), "wb") as fh:
                fh.write(pickle.dumps(layer))  # pre-frame format
            assert spill.load_layer(1) == layer
        finally:
            spill.close()

    def test_bare_pickle_static_slab_still_loads(self, tmp_path):
        store = _populated_store()
        spill = SpillManager(store, directory=str(tmp_path))
        try:
            spill.seal_static()
            static = spill.load_static()
            with open(spill._static_path, "wb") as fh:
                fh.write(pickle.dumps(static))  # pre-frame format
        finally:
            again = spill.load_static()
            assert again["num_layers"] == static["num_layers"]
            assert again["relations"] == static["relations"]
            spill.close()


class TestWriterFailure:
    def _broken(self, tmp_path, monkeypatch):
        spill = SpillManager(
            _populated_store(), directory=str(tmp_path), async_writes=True,
        )

        def boom(job):
            raise OSError("disk detached")

        monkeypatch.setattr(spill, "_execute", boom)
        return spill

    def test_failure_surfaces_at_flush(self, tmp_path, monkeypatch):
        spill = self._broken(tmp_path, monkeypatch)
        spill.seal_layer_nowait(0)
        with pytest.raises(ProvenanceError, match="disk detached"):
            spill.flush()
        # The error is consumed once; the manager stays usable.
        spill.flush()
        spill.close()

    def test_failure_surfaces_at_next_seal(self, tmp_path, monkeypatch):
        spill = self._broken(tmp_path, monkeypatch)
        spill.seal_layer_nowait(0)
        spill._queue.join()  # let the writer record the failure
        with pytest.raises(ProvenanceError, match="disk detached"):
            spill.seal_layer_nowait(1)
        spill.close()

    def test_failure_surfaces_at_close(self, tmp_path, monkeypatch):
        spill = self._broken(tmp_path, monkeypatch)
        spill.seal_layer_nowait(0)
        spill._queue.join()
        with pytest.raises(ProvenanceError, match="disk detached"):
            spill.close()

    def test_later_jobs_skipped_after_failure(self, tmp_path, monkeypatch):
        store = _populated_store()
        spill = SpillManager(
            store, directory=str(tmp_path), async_writes=True,
        )
        real_execute = SpillManager._execute
        calls = []

        def first_fails(job):
            calls.append(job[0])
            if len(calls) == 1:
                raise OSError("disk detached")
            real_execute(spill, job)

        monkeypatch.setattr(spill, "_execute", first_fails)
        spill.seal_layer_nowait(0)
        spill.seal_layer_nowait(1)
        spill.seal_layer_nowait(2)
        with pytest.raises(ProvenanceError, match="disk detached"):
            spill.flush()
        # Jobs enqueued behind the failure were drained, not written.
        assert not os.path.exists(spill.slab_path(1))
        spill.close()


class TestTolerantClose:
    def test_close_with_missing_slab_files(self, tmp_path):
        store = _populated_store()
        spill = SpillManager(store, directory=str(tmp_path))
        spill.seal_all()
        os.unlink(spill.slab_path(0))  # partially torn down externally
        spill.close()
        assert not os.path.exists(spill.slab_path(1))

    def test_close_before_any_seal(self, tmp_path):
        spill = SpillManager(_populated_store(), directory=str(tmp_path))
        spill.close()  # no static slab, no layers: must not raise
