"""Differential matrix across sealed-store formats, out-of-core behavior,
in-place migration, and corrupt-slab handling.

The contract under test: query results are **byte-identical** across
columnar (ARSC), framed-pickle (ARSL), and legacy bare-pickle stores,
indexed and scan — the on-disk layout may only change cost, never
answers. Queries 2 and 11 are capture-time queries (they read transient
stream relations and cannot run offline); their cross-format guarantee
is the chunk-level one asserted by ``test_rebuilt_stores_identical``.
"""

import os
import pickle

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.errors import ProvenanceError
from repro.graph.generators import web_graph, with_random_weights
from repro.obs import ledger as obsledger
from repro.provenance.spill import (
    SpillManager,
    detect_slab_format,
    migrate_store,
    open_store_view,
    rebuild_store,
)
from repro.runtime.offline import (
    run_layered_from_spill,
    run_naive_from_spill,
    run_reference,
)
from repro.runtime.online import run_online

FORMATS = ("columnar", "pickle", "legacy")


@pytest.fixture(scope="module")
def wgraph():
    return with_random_weights(
        web_graph(120, avg_degree=5, target_diameter=8, seed=41), seed=41
    )


@pytest.fixture(scope="module")
def full_store(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


@pytest.fixture(scope="module")
def custom_store(wgraph):
    return run_online(
        wgraph, SSSP(source=0), Q.CAPTURE_BACKWARD_CUSTOM_QUERY, capture=True
    ).store


def _seal(store, directory, fmt, compression="zlib"):
    """Seal ``store`` into ``directory`` in one of the three formats.

    ``legacy`` stores predate both ARSL framing and manifests: each slab
    is one bare pickle (a layer file holds its chunk dict, the static
    file holds ``load_static()``'s shape)."""
    spill = SpillManager(
        store, directory=directory,
        format="pickle" if fmt == "legacy" else fmt,
        compression=compression,
    )
    spill.seal_all()
    spill.write_manifest()
    if fmt == "legacy":
        static = spill.load_static()
        for superstep in list(spill.sealed_layers()):
            chunks = spill.load_layer(superstep)
            with open(spill.slab_path(superstep), "wb") as fh:
                fh.write(pickle.dumps(chunks))
        with open(spill._static_path, "wb") as fh:
            fh.write(pickle.dumps(static))
    return spill


@pytest.fixture(scope="module")
def sealed_dirs(full_store, tmp_path_factory):
    dirs = {}
    for fmt in FORMATS:
        directory = str(tmp_path_factory.mktemp(f"store-{fmt}"))
        _seal(full_store, directory, fmt)
        dirs[fmt] = directory
    return dirs


@pytest.fixture(scope="module")
def lineage_params(full_store):
    sigma = full_store.max_superstep
    alpha = next(x for x, i in full_store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


# ---------------------------------------------------------------------------
# Queries 1-12, indexed and scan, across all three formats
# ---------------------------------------------------------------------------
def query_cases(lineage_params):
    return {
        "query1": dict(params={"eps": 0.1}, udfs=Q.apt_udfs(SSSP(source=0))),
        "query3": dict(params={"source": 0}),
        "query4": dict(),
        "query5": dict(),
        "query6": dict(),
        "query7": dict(),
        "query8": dict(params={"eps": 0.01}),
        "query9": dict(params={"alpha": 0,
                               "sigma": lineage_params["sigma"]}),
        "query10": dict(params=lineage_params),
    }


@pytest.mark.parametrize("use_index", (True, False), ids=("indexed", "scan"))
@pytest.mark.parametrize("qname", [
    "query1", "query3", "query4", "query5", "query6", "query7", "query8",
    "query9", "query10",
])
def test_query_matrix(qname, use_index, sealed_dirs, full_store, wgraph,
                      lineage_params):
    case = query_cases(lineage_params)[qname]
    query = Q.NAMED_QUERIES[qname]
    reference = run_reference(
        full_store, query, wgraph, case.get("params"), case.get("udfs"),
    )
    digests = set()
    for fmt in FORMATS:
        spill = SpillManager.open(sealed_dirs[fmt])
        for driver in (run_layered_from_spill, run_naive_from_spill):
            result = driver(
                spill, query, wgraph, case.get("params"), case.get("udfs"),
                use_index=use_index,
            )
            for relation in reference.relations():
                assert result.rows(relation) == reference.rows(relation), (
                    f"{qname} {fmt} {driver.__name__} {relation}"
                )
            assert result.stats["from_spill"]
            digests.add(obsledger.digest_query_result(result))
    assert len(digests) == 1, "results must be byte-identical across formats"


def test_query12_custom_store(custom_store, wgraph, lineage_params,
                              tmp_path_factory):
    reference = run_reference(
        custom_store, Q.NAMED_QUERIES["query12"], wgraph, lineage_params,
    )
    assert reference.count("back_trace") >= 1
    digests = set()
    for fmt in FORMATS:
        directory = str(tmp_path_factory.mktemp(f"custom-{fmt}"))
        spill = _seal(custom_store, directory, fmt)
        result = run_layered_from_spill(
            spill, Q.NAMED_QUERIES["query12"], wgraph, lineage_params,
        )
        for relation in reference.relations():
            assert result.rows(relation) == reference.rows(relation)
        digests.add(obsledger.digest_query_result(result))
    assert len(digests) == 1


def test_rebuilt_stores_identical(sealed_dirs, full_store):
    """The capture queries' guarantee: every format rebuilds the exact
    same store content (same rows, same layers, same relations)."""
    for fmt in FORMATS:
        rebuilt = rebuild_store(SpillManager.open(sealed_dirs[fmt]))
        assert rebuilt.num_layers == full_store.num_layers
        assert rebuilt.counts() == full_store.counts()
        for relation in full_store.relations():
            assert (sorted(rebuilt.rows(relation), key=repr)
                    == sorted(full_store.rows(relation), key=repr)), (
                f"{fmt} {relation}")


def test_store_format_detection(sealed_dirs):
    for fmt, directory in sealed_dirs.items():
        spill = SpillManager.open(directory)
        assert spill.store_format() == fmt
        stats_fmt = {detect_slab_format(os.path.join(directory, name))
                     for name in spill.slab_formats}
        assert stats_fmt == {fmt}


# ---------------------------------------------------------------------------
# out-of-core: layers larger than the budget stay queryable columnar
# ---------------------------------------------------------------------------
class TestOutOfCore:
    @pytest.fixture(scope="class")
    def raw_dirs(self, full_store, tmp_path_factory):
        """Raw compression: the pickle load unit (whole slab bytes) and
        the columnar one (decoded segment bytes) are then measured in the
        same currency, uncompressed payload."""
        dirs = {}
        for fmt in ("columnar", "pickle"):
            directory = str(tmp_path_factory.mktemp(f"ooc-{fmt}"))
            _seal(full_store, directory, fmt, compression="raw")
            dirs[fmt] = directory
        return dirs

    def test_query10_answers_where_pickle_cannot_load(
            self, raw_dirs, full_store, wgraph, lineage_params):
        """The acceptance criterion: pick a budget *below* the largest
        pickle slab but above columnar's peak per-slab decode. Columnar
        answers Query 10 correctly; pickle fails cleanly."""
        query = Q.NAMED_QUERIES["query10"]
        reference = run_reference(full_store, query, wgraph, lineage_params)

        columnar = SpillManager.open(raw_dirs["columnar"])
        unbudgeted = run_layered_from_spill(
            columnar, query, wgraph, lineage_params,
        )
        peak_decoded = unbudgeted.stats["peak_slab_bytes"]
        assert unbudgeted.stats["store_format"] == "columnar"
        assert unbudgeted.stats["decoded_bytes"] >= peak_decoded > 0

        pickle_spill = SpillManager.open(raw_dirs["pickle"])
        largest_slab = max(
            pickle_spill.layer_size(t) for t in pickle_spill.sealed_layers()
        )
        # The substantive claim: Query 10's columnar load unit is smaller
        # than any whole-slab load unit, because the plan never touches
        # receive_message's columns.
        assert peak_decoded < largest_slab
        budget = (peak_decoded + largest_slab) // 2

        with pytest.raises(MemoryError, match="memory budget"):
            run_layered_from_spill(
                pickle_spill, query, wgraph, lineage_params,
                memory_budget_bytes=budget,
            )

        result = run_layered_from_spill(
            SpillManager.open(raw_dirs["columnar"]), query, wgraph,
            lineage_params, memory_budget_bytes=budget,
        )
        assert result.stats["peak_slab_bytes"] <= budget
        for relation in reference.relations():
            assert result.rows(relation) == reference.rows(relation)

    def test_columnar_budget_too_small_raises(self, raw_dirs, wgraph,
                                              lineage_params):
        spill = SpillManager.open(raw_dirs["columnar"])
        with pytest.raises(MemoryError, match="memory budget"):
            run_layered_from_spill(
                spill, Q.NAMED_QUERIES["query10"], wgraph, lineage_params,
                memory_budget_bytes=1,
            )

    def test_naive_budget_stays_format_independent(
            self, raw_dirs, wgraph, lineage_params):
        """Naive evaluation materializes everything by definition, so its
        up-front budget check fails even on a columnar store."""
        spill = SpillManager.open(raw_dirs["columnar"])
        budget = spill.total_sealed_bytes() - 1
        with pytest.raises(MemoryError, match="materialize all sealed"):
            run_naive_from_spill(
                spill, Q.NAMED_QUERIES["query10"], wgraph, lineage_params,
                memory_budget_bytes=budget,
            )


# ---------------------------------------------------------------------------
# sealed view semantics
# ---------------------------------------------------------------------------
class TestSealedView:
    def test_view_only_for_columnar(self, sealed_dirs):
        assert open_store_view(SpillManager.open(sealed_dirs["pickle"])) \
            is None
        assert open_store_view(SpillManager.open(sealed_dirs["legacy"])) \
            is None
        view = open_store_view(SpillManager.open(sealed_dirs["columnar"]))
        assert view is not None
        view.close()

    def test_view_matches_store(self, sealed_dirs, full_store):
        view = open_store_view(SpillManager.open(sealed_dirs["columnar"]))
        try:
            assert view.num_layers == full_store.num_layers
            assert view.counts() == full_store.counts()
            assert view.execution_nodes() == full_store.execution_nodes()
            for relation in full_store.relations():
                for vertex in full_store.vertices(relation):
                    assert (view.partition(relation, vertex)
                            == full_store.partition(relation, vertex))
        finally:
            view.close()

    def test_unknown_relation_is_empty_read(self, sealed_dirs):
        view = open_store_view(SpillManager.open(sealed_dirs["columnar"]))
        try:
            assert view.partition("never_captured", 0) == frozenset()
            assert view.probe("never_captured", 0, (1,), (0,)) == ()
        finally:
            view.close()


# ---------------------------------------------------------------------------
# in-place migration
# ---------------------------------------------------------------------------
class TestMigration:
    def _query_digest(self, directory, wgraph, lineage_params):
        result = run_layered_from_spill(
            SpillManager.open(directory), Q.NAMED_QUERIES["query10"],
            wgraph, lineage_params,
        )
        return obsledger.digest_query_result(result)

    @pytest.mark.parametrize("source_fmt", ("pickle", "legacy"))
    def test_migrate_to_columnar(self, source_fmt, full_store, wgraph,
                                 lineage_params, tmp_path):
        directory = str(tmp_path / "store")
        _seal(full_store, directory, source_fmt)
        before = self._query_digest(directory, wgraph, lineage_params)

        report = migrate_store(directory, "columnar", run_id="rmigrated01")
        report["spill"].release_slabs()
        assert report["to_format"] == "columnar"
        assert all(s["to_format"] == "columnar"
                   for s in report["slabs"].values())

        spill = SpillManager.open(directory)
        assert spill.store_format() == "columnar"
        assert spill.run_id == "rmigrated01"
        assert spill.migrated_from == report["from_run_id"]
        assert self._query_digest(directory, wgraph, lineage_params) == before

    def test_migrate_restamps_manifest(self, full_store, tmp_path):
        """`repro audit verify` must pass on the migrated store: the
        manifest digests are recomputed over the new slab bytes."""
        directory = str(tmp_path / "store")
        _seal(full_store, directory, "pickle")
        problems, _ = obsledger.verify_store(directory)
        assert problems == []
        migrate_store(directory, "columnar")["spill"].release_slabs()
        problems, _ = obsledger.verify_store(directory)
        assert problems == []

    def test_migrate_round_trip(self, full_store, wgraph, lineage_params,
                                tmp_path):
        directory = str(tmp_path / "store")
        _seal(full_store, directory, "columnar")
        before = self._query_digest(directory, wgraph, lineage_params)
        migrate_store(directory, "pickle")["spill"].release_slabs()
        assert SpillManager.open(directory).store_format() == "pickle"
        migrate_store(directory, "columnar")["spill"].release_slabs()
        assert SpillManager.open(directory).store_format() == "columnar"
        assert self._query_digest(directory, wgraph, lineage_params) == before

    def test_serve_admission_after_migration(self, full_store, tmp_path):
        """Digest-verified admission passes on a migrated legacy store,
        and the catalog serves it through the sealed columnar view."""
        from repro.provenance.store import SealedStoreView
        from repro.serve.catalog import RunCatalog

        directory = str(tmp_path / "store")
        _seal(full_store, directory, "legacy")
        # legacy slab rewrite drifted from the seal-time manifest; migrate
        # re-stamps it, after which admission verifies clean
        migrate_store(directory, "columnar")["spill"].release_slabs()
        catalog = RunCatalog(verify=True)
        entry, created = catalog.register_path(directory)
        assert created
        assert isinstance(entry.store, SealedStoreView)
        assert entry.store.num_layers == full_store.num_layers


# ---------------------------------------------------------------------------
# corrupt slabs surface as ProvenanceError at open
# ---------------------------------------------------------------------------
class TestCorruptStores:
    def _sealed(self, full_store, tmp_path, fmt):
        directory = str(tmp_path / "store")
        _seal(full_store, directory, fmt)
        return directory

    @pytest.mark.parametrize("fmt,needle", [
        ("columnar", "columnar (ARSC)"),
        ("pickle", "framed (ARSL)"),
    ])
    def test_truncated_slab_fails_open(self, full_store, tmp_path, fmt,
                                       needle):
        directory = self._sealed(full_store, tmp_path, fmt)
        victim = os.path.join(directory, "layer-000001.slab")
        data = open(victim, "rb").read()
        with open(victim, "wb") as fh:
            fh.write(data[: max(5, len(data) // 3)])
        with pytest.raises(ProvenanceError) as err:
            SpillManager.open(directory)
        assert needle in str(err.value) or "truncated" in str(err.value)
        assert "layer-000001.slab" in str(err.value)

    def test_empty_slab_fails_open(self, full_store, tmp_path):
        directory = self._sealed(full_store, tmp_path, "columnar")
        victim = os.path.join(directory, "layer-000000.slab")
        open(victim, "wb").close()
        with pytest.raises(ProvenanceError, match="empty file"):
            SpillManager.open(directory)

    def test_corrupt_footer_fails_open(self, full_store, tmp_path):
        directory = self._sealed(full_store, tmp_path, "columnar")
        victim = os.path.join(directory, "layer-000002.slab")
        data = open(victim, "rb").read()
        with open(victim, "wb") as fh:
            fh.write(data[:-4] + b"XXXX")
        with pytest.raises(ProvenanceError,
                           match=r"columnar \(ARSC\).*layer-000002"):
            SpillManager.open(directory)
