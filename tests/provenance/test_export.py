"""Tests for the JSON-lines provenance export."""

import io
import json
import math

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.errors import ProvenanceError
from repro.graph.generators import chain_graph
from repro.provenance.export import (
    export_jsonl,
    export_path,
    import_jsonl,
    import_path,
)
from repro.provenance.model import RelationSchema, TOPO_EDGE
from repro.provenance.store import ProvenanceStore
from repro.runtime.online import run_online


@pytest.fixture
def store():
    g = chain_graph(4)
    for i in range(3):
        g.set_edge_value(i, i + 1, 1.0)
    return run_online(
        g, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


class TestRoundTrip:
    def test_store_roundtrip(self, store):
        buf = io.StringIO()
        written = export_jsonl(store, buf)
        assert written == store.num_rows
        buf.seek(0)
        back = import_jsonl(buf)
        assert back.num_rows == store.num_rows
        for relation in store.relations():
            assert set(back.rows(relation)) == set(store.rows(relation))

    def test_schemas_preserved(self, tmp_path):
        s = ProvenanceStore()
        s.registry.register(RelationSchema("prov_edges", 2, topology=TOPO_EDGE))
        s.add("prov_edges", (0, 1))
        path = str(tmp_path / "p.jsonl")
        export_path(s, path)
        back = import_path(path)
        assert back.registry.get("prov_edges").topology == TOPO_EDGE

    def test_infinity_roundtrip(self):
        s = ProvenanceStore()
        s.add("value", (0, math.inf, 0))
        s.add("value", (1, -math.inf, 0))
        buf = io.StringIO()
        export_jsonl(s, buf)
        buf.seek(0)
        back = import_jsonl(buf)
        assert set(back.rows("value")) == {(0, math.inf, 0), (1, -math.inf, 0)}

    def test_tuple_payloads_roundtrip(self):
        s = ProvenanceStore()
        s.add("edge_value", (0, 1, (4.0, 3.5, 0.5), 2))
        buf = io.StringIO()
        export_jsonl(s, buf)
        buf.seek(0)
        back = import_jsonl(buf)
        assert set(back.rows("edge_value")) == {(0, 1, (4.0, 3.5, 0.5), 2)}

    def test_queryable_after_roundtrip(self, store, tmp_path):
        path = str(tmp_path / "p.jsonl")
        export_path(store, path)
        back = import_path(path)
        from repro.runtime.offline import run_layered

        sigma = back.max_superstep
        alpha = min(x for x, i in back.rows("superstep") if i == sigma)
        result = run_layered(
            back, Q.BACKWARD_LINEAGE_FULL_QUERY,
            params={"alpha": alpha, "sigma": sigma},
        )
        assert result.count("back_trace") >= 1


class TestValidation:
    def test_header_is_json(self, store):
        buf = io.StringIO()
        export_jsonl(store, buf)
        buf.seek(0)
        header = json.loads(buf.readline())
        assert header["format"] == "repro-provenance"
        assert "value" in header["schemas"]

    def test_empty_file_rejected(self):
        with pytest.raises(ProvenanceError, match="empty"):
            import_jsonl(io.StringIO(""))

    def test_wrong_format_rejected(self):
        buf = io.StringIO(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ProvenanceError, match="not a"):
            import_jsonl(buf)

    def test_wrong_version_rejected(self):
        buf = io.StringIO(
            json.dumps({"format": "repro-provenance", "version": 99}) + "\n"
        )
        with pytest.raises(ProvenanceError, match="version"):
            import_jsonl(buf)

    def test_malformed_line_rejected(self):
        buf = io.StringIO(
            json.dumps({
                "format": "repro-provenance", "version": 1, "schemas": {},
            }) + "\nnot json\n"
        )
        with pytest.raises(ProvenanceError, match="line 2"):
            import_jsonl(buf)

    def test_nan_rejected(self):
        s = ProvenanceStore()
        s.add("value", (0, float("nan"), 0))
        with pytest.raises(ProvenanceError, match="NaN"):
            export_jsonl(s, io.StringIO())
