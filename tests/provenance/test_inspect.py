"""Tests for the provenance inspector (text debugging views)."""

import pytest

from repro.analytics.sssp import SSSP
from repro.core import queries as Q
from repro.graph.generators import chain_graph
from repro.provenance import inspect as I
from repro.runtime.online import run_online


@pytest.fixture(scope="module")
def store():
    g = chain_graph(5)
    for i in range(4):
        g.set_edge_value(i, i + 1, 1.0)
    return run_online(
        g, SSSP(source=0), Q.CAPTURE_FULL_QUERY, capture=True
    ).store


class TestAccessors:
    def test_value_timeline(self, store):
        timeline = I.value_timeline(store, 2)
        assert timeline[0][0] == 0  # active at superstep 0
        assert timeline[-1][1] == 2.0  # final distance

    def test_activity(self, store):
        # chain vertex 3: active at superstep 0 and when its distance lands
        assert I.activity(store, 3) == [0, 3]

    def test_messages_at(self, store):
        exchange = I.messages_at(store, 1, 1)
        assert exchange["received"] == [(0, 1.0)]
        assert exchange["sent"] == [(2, 2.0)]

    def test_neighborhood(self, store):
        assert I.neighborhood(store, 2, hops=1) == {1, 2, 3}
        assert I.neighborhood(store, 2, hops=2) == {0, 1, 2, 3, 4}


class TestRendering:
    def test_render_vertex(self, store):
        text = I.render_vertex(store, 2)
        assert text.startswith("vertex 2")
        assert "s0" in text and "recv[" in text and "sent[" in text

    def test_render_vertex_empty(self):
        from repro.provenance.store import ProvenanceStore

        text = I.render_vertex(ProvenanceStore(), 7)
        assert "no captured activity" in text

    def test_render_slice(self, store):
        text = I.render_slice(store, [0, 1, 2])
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("s0")
        # vertex 0 is active only at superstep 0
        assert lines[1].split()[1] == "*"

    def test_truncates_long_message_lists(self, store):
        text = I.render_vertex(store, 1, max_messages=0)
        assert "..." in text or "recv[]" not in text

    def test_summarize(self, store):
        text = I.summarize(store)
        assert "provenance store" in text
        assert "value:" in text
        assert "superstep:" in text
