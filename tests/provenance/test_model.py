"""Unit tests for the provenance schema model and value freezing."""

import numpy as np
import pytest

from repro.errors import ProvenanceError
from repro.provenance.model import (
    AUTO_CAPTURED,
    CORE_SCHEMAS,
    PROV,
    STATIC,
    STREAM,
    TOPO_EDGE,
    TOPO_RECEIVE,
    TOPO_SEND,
    RelationSchema,
    SchemaRegistry,
    freeze,
)


class TestCoreSchemas:
    def test_table1_relations_present(self):
        for name in (
            "superstep",
            "value",
            "evolution",
            "send_message",
            "receive_message",
            "edge_value",
        ):
            assert name in CORE_SCHEMAS
            assert CORE_SCHEMAS[name].kind == PROV

    def test_stream_relations(self):
        for name in ("vertex_value", "send", "receive"):
            assert CORE_SCHEMAS[name].kind == STREAM

    def test_static_relations(self):
        assert CORE_SCHEMAS["vertex"].kind == STATIC
        assert CORE_SCHEMAS["edge"].kind == STATIC

    def test_topologies(self):
        assert CORE_SCHEMAS["receive_message"].topology == TOPO_RECEIVE
        assert CORE_SCHEMAS["send_message"].topology == TOPO_SEND
        assert CORE_SCHEMAS["edge"].topology == TOPO_EDGE
        assert CORE_SCHEMAS["value"].topology is None

    def test_time_indexes(self):
        assert CORE_SCHEMAS["superstep"].time_index == 1
        assert CORE_SCHEMAS["value"].time_index == 2
        assert CORE_SCHEMAS["send_message"].time_index == 3
        assert CORE_SCHEMAS["edge"].time_index is None

    def test_auto_captured_are_prov(self):
        for name in AUTO_CAPTURED:
            assert CORE_SCHEMAS[name].kind == PROV


class TestSchema:
    def test_check_arity(self):
        schema = RelationSchema("r", 2)
        schema.check((1, 2))
        with pytest.raises(ProvenanceError):
            schema.check((1, 2, 3))

    def test_time_and_location_of(self):
        schema = RelationSchema("r", 3, time_index=2)
        assert schema.time_of((7, "x", 4)) == 4
        assert schema.location_of((7, "x", 4)) == 7
        assert RelationSchema("q", 1).time_of((0,)) is None


class TestRegistry:
    def test_core_preloaded(self):
        reg = SchemaRegistry()
        assert "value" in reg
        assert reg.get("value").arity == 3

    def test_register_custom(self):
        reg = SchemaRegistry()
        schema = RelationSchema("prov_edges", 2, topology=TOPO_EDGE)
        reg.register(schema)
        assert reg.get("prov_edges") is schema

    def test_register_idempotent(self):
        reg = SchemaRegistry()
        schema = RelationSchema("r", 2)
        reg.register(schema)
        reg.register(RelationSchema("r", 2))  # identical: fine

    def test_register_conflict_raises(self):
        reg = SchemaRegistry()
        reg.register(RelationSchema("r", 2))
        with pytest.raises(ProvenanceError):
            reg.register(RelationSchema("r", 3))

    def test_unknown_relation(self):
        reg = SchemaRegistry()
        with pytest.raises(ProvenanceError):
            reg.get("nope")
        assert reg.maybe_get("nope") is None


class TestFreeze:
    def test_scalars_pass_through(self):
        for v in (1, 2.5, "s", b"b", True, None):
            assert freeze(v) == v

    def test_list_and_set_become_tuples(self):
        assert freeze([1, 2]) == (1, 2)
        assert freeze({1}) == (1,)

    def test_nested(self):
        assert freeze([1, [2, 3]]) == (1, (2, 3))

    def test_dict_sorted(self):
        assert freeze({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_numpy_array(self):
        frozen = freeze(np.array([1.0, 2.0]))
        assert frozen == (1.0, 2.0)
        hash(frozen)

    def test_result_always_hashable(self):
        hash(freeze({"k": [1, {2: np.array([3])}]}))

    def test_unhashable_object_falls_back_to_repr(self):
        class Weird:
            __hash__ = None

            def __repr__(self):
                return "weird"

        assert freeze(Weird()) == "weird"
