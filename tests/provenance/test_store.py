"""Unit tests for the compact provenance store."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.store import ProvenanceStore


@pytest.fixture
def store() -> ProvenanceStore:
    s = ProvenanceStore()
    s.add("value", (0, 1.5, 0))
    s.add("value", (0, 1.2, 1))
    s.add("value", (1, 9.0, 1))
    s.add("superstep", (0, 0))
    s.add("superstep", (0, 1))
    s.add("send_message", (0, 1, "m", 0))
    return s


class TestWrites:
    def test_add_dedupes(self, store):
        assert not store.add("value", (0, 1.5, 0))
        assert store.num_rows == 6

    def test_arity_checked(self, store):
        with pytest.raises(ProvenanceError):
            store.add("value", (0, 1.5))

    def test_unknown_relation_rejected(self, store):
        with pytest.raises(ProvenanceError):
            store.add("mystery", (0,))

    def test_add_all_counts_new(self, store):
        added = store.add_all("value", [(0, 1.5, 0), (2, 3.0, 0)])
        assert added == 1


class TestReads:
    def test_partition(self, store):
        assert store.partition("value", 0) == {(0, 1.5, 0), (0, 1.2, 1)}
        assert store.partition("value", 99) == set()
        assert store.partition("missing", 0) == set()

    def test_partition_at(self, store):
        assert store.partition_at("value", 0, 1) == {(0, 1.2, 1)}
        assert store.partition_at("value", 0, 7) == set()

    def test_rows(self, store):
        assert sorted(store.rows("superstep")) == [(0, 0), (0, 1)]

    def test_vertices(self, store):
        assert store.vertices("value") == {0, 1}
        assert store.vertices() == {0, 1}

    def test_layer_slices_by_time(self, store):
        layer1 = store.layer(1)
        assert layer1["value"] == {0: {(0, 1.2, 1)}, 1: {(1, 9.0, 1)}}
        assert layer1["superstep"] == {0: {(0, 1)}}
        assert "send_message" not in layer1

    def test_max_superstep_and_layers(self, store):
        assert store.max_superstep == 1
        assert store.num_layers == 2

    def test_execution_nodes(self, store):
        nodes = store.execution_nodes()
        assert (0, 0) in nodes and (0, 1) in nodes and (1, 1) in nodes


class TestAccounting:
    def test_bytes_positive_and_monotone(self, store):
        before = store.total_bytes()
        store.add("value", (5, 1.0, 0))
        assert store.total_bytes() > before

    def test_relation_bytes(self, store):
        per_rel = store.relation_bytes()
        assert set(per_rel) == {"value", "superstep", "send_message"}
        assert all(v > 0 for v in per_rel.values())

    def test_counts(self, store):
        assert store.counts() == {
            "value": 3,
            "superstep": 2,
            "send_message": 1,
        }

    def test_empty_store(self):
        s = ProvenanceStore()
        assert s.num_rows == 0
        assert s.total_bytes() == 0
        assert s.num_layers == 0
        assert s.max_superstep == -1
