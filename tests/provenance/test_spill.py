"""Unit tests for layer spilling (the HDFS offload stand-in)."""

import os

import pytest

from repro.errors import ProvenanceError
from repro.provenance.model import RelationSchema, TOPO_EDGE
from repro.provenance.spill import SpillManager, rebuild_store
from repro.provenance.store import ProvenanceStore


@pytest.fixture
def store() -> ProvenanceStore:
    s = ProvenanceStore()
    s.registry.register(RelationSchema("prov_edges", 2, topology=TOPO_EDGE))
    s.add("value", (0, 1.0, 0))
    s.add("value", (0, 2.0, 1))
    s.add("value", (1, 3.0, 1))
    s.add("superstep", (0, 0))
    s.add("prov_edges", (0, 1))
    return s


class TestSpill:
    def test_seal_and_load_layer(self, store, tmp_path):
        with SpillManager(store, directory=str(tmp_path)) as spill:
            size = spill.seal_layer(1)
            assert size > 0
            layer = spill.load_layer(1)
            assert layer["value"][0] == {(0, 2.0, 1)}
            assert layer["value"][1] == {(1, 3.0, 1)}

    def test_load_unsealed_raises(self, store, tmp_path):
        with SpillManager(store, directory=str(tmp_path)) as spill:
            with pytest.raises(ProvenanceError):
                spill.load_layer(0)

    def test_static_slab_holds_timeless_and_schemas(self, store, tmp_path):
        with SpillManager(store, directory=str(tmp_path)) as spill:
            spill.seal_static()
            static = spill.load_static()
            assert static["relations"]["prov_edges"][0] == {(0, 1)}
            assert static["schemas"]["prov_edges"].topology == TOPO_EDGE
            assert static["num_layers"] == 2

    def test_seal_all_and_rebuild(self, store, tmp_path):
        with SpillManager(store, directory=str(tmp_path)) as spill:
            total = spill.seal_all()
            assert total == spill.bytes_spilled > 0
            rebuilt = rebuild_store(spill)
        assert rebuilt.num_rows == store.num_rows
        assert rebuilt.partition("value", 0) == store.partition("value", 0)
        assert rebuilt.partition("prov_edges", 0) == {(0, 1)}
        assert rebuilt.registry.get("prov_edges").topology == TOPO_EDGE

    def test_budget_flag(self, store, tmp_path):
        spill = SpillManager(store, directory=str(tmp_path),
                             memory_budget_bytes=1)
        assert spill.over_budget()
        spill.memory_budget_bytes = None
        assert not spill.over_budget()
        spill.close()

    def test_close_removes_slabs(self, store, tmp_path):
        spill = SpillManager(store, directory=str(tmp_path))
        spill.seal_all()
        paths = [spill.slab_path(i) for i in range(store.num_layers)]
        assert all(os.path.exists(p) for p in paths)
        spill.close()
        assert not any(os.path.exists(p) for p in paths)
