"""Unit tests for the unfolded provenance graph (Figure 3 / Definition 5.1)."""

import pytest

from repro.errors import ProvenanceError
from repro.provenance.graphview import unfold
from repro.provenance.store import ProvenanceStore


@pytest.fixture
def sssp_like_store() -> ProvenanceStore:
    """The running example of Figure 3: y -> x -> z across supersteps."""
    s = ProvenanceStore()
    # y updates at i-1 = 0 and messages x
    s.add("superstep", ("y", 0))
    s.add("value", ("y", 1.0, 0))
    s.add("send_message", ("y", "x", 1.5, 0))
    # x receives at i = 1, updates, messages z
    s.add("superstep", ("x", 1))
    s.add("value", ("x", 1.5, 1))
    s.add("receive_message", ("x", "y", 1.5, 1))
    s.add("send_message", ("x", "z", 2.0, 1))
    # y messages x again; x doesn't update at i+1 = 2
    s.add("superstep", ("y", 1))
    s.add("send_message", ("y", "x", 1.7, 1))
    s.add("superstep", ("x", 2))
    s.add("value", ("x", 1.5, 2))
    s.add("evolution", ("x", 1, 2))
    s.add("superstep", ("z", 2))
    s.add("receive_message", ("z", "x", 2.0, 2))
    return s


class TestUnfold:
    def test_nodes_are_executions(self, sssp_like_store):
        g = unfold(sssp_like_store)
        assert ("y", 0) in g.nodes
        assert ("x", 1) in g.nodes
        assert ("x", 2) in g.nodes
        assert ("z", 2) in g.nodes

    def test_values_annotated(self, sssp_like_store):
        g = unfold(sssp_like_store)
        assert g.values[("x", 1)] == 1.5

    def test_evolution_edges(self, sssp_like_store):
        g = unfold(sssp_like_store)
        assert (("x", 1), ("x", 2)) in g.evolution_edges

    def test_message_edges_cross_one_layer(self, sssp_like_store):
        g = unfold(sssp_like_store)
        for (src, dst, _m) in g.message_edges:
            assert dst[1] == src[1] + 1

    def test_send_and_receive_agree(self, sssp_like_store):
        g = unfold(sssp_like_store)
        # x -> z edge is recorded both from x's send and z's receive
        assert (("x", 1), ("z", 2), 2.0) in g.message_edges

    def test_layers(self, sssp_like_store):
        g = unfold(sssp_like_store)
        assert g.num_layers == 3
        assert g.layer(0) == {("y", 0)}
        assert g.layer(1) == {("x", 1), ("y", 1)}
        assert g.layer(2) == {("x", 2), ("z", 2)}
        assert len(g.layers()) == 3

    def test_layers_partition_nodes(self, sssp_like_store):
        g = unfold(sssp_like_store)
        union = set()
        for layer in g.layers():
            assert union.isdisjoint(layer)
            union |= layer
        assert union == g.nodes

    def test_requires_superstep_relation(self):
        s = ProvenanceStore()
        s.add("value", (0, 1.0, 0))
        with pytest.raises(ProvenanceError):
            unfold(s)
