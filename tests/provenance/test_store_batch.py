"""Batched ingestion tests: add_batch equivalence with per-row add,
attribute interning, and size-model exactness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.provenance.store import ProvenanceStore
from repro.sizemodel import estimate_bytes

ROWS = [
    (0, 1.5, 0),
    (0, 1.2, 1),
    (1, 9.0, 1),
    (0, 1.5, 0),  # duplicate
    (2, 0.25, 2),
]


def _store_dict(store):
    return {
        relation: sorted(store.rows(relation), key=repr)
        for relation in sorted(store.relations())
    }


class TestBatchEquivalence:
    def test_matches_per_row_add(self):
        batched = ProvenanceStore()
        added = batched.add_batch("value", ROWS)
        perrow = ProvenanceStore()
        count = sum(perrow.add("value", row) for row in ROWS)
        assert added == count == 4
        assert _store_dict(batched) == _store_dict(perrow)
        assert batched.total_bytes() == perrow.total_bytes()
        assert batched.num_rows == perrow.num_rows
        assert batched.max_superstep == perrow.max_superstep
        assert batched.counts() == perrow.counts()

    def test_time_slicing_matches(self):
        store = ProvenanceStore()
        store.add_batch("value", ROWS)
        assert store.partition_at("value", 0, 1) == {(0, 1.2, 1)}
        assert store.layer(2)["value"] == {2: {(2, 0.25, 2)}}

    def test_empty_batch_is_noop(self):
        store = ProvenanceStore()
        assert store.add_batch("value", []) == 0
        # Matches the old add_all semantics: an empty iterable never
        # touches the registry, even for unknown relations.
        assert store.add_batch("mystery", []) == 0
        assert store.num_rows == 0

    def test_arity_error_raised(self):
        store = ProvenanceStore()
        with pytest.raises(ProvenanceError):
            store.add_batch("value", [(0, 1.5, 0), (1, 2.0)])

    def test_unknown_relation_rejected(self):
        store = ProvenanceStore()
        with pytest.raises(ProvenanceError):
            store.add_batch("mystery", [(0,)])

    def test_add_all_is_batched(self):
        store = ProvenanceStore()
        assert store.add_all("value", ROWS) == 4


class TestInterning:
    def test_string_attributes_share_objects(self):
        store = ProvenanceStore()
        prefix = "he"
        tag_a, tag_b = prefix + "llo", prefix + "llo"  # distinct objects
        assert tag_a is not tag_b
        store.add_batch("send_message", [(0, 1, tag_a, 0), (2, 3, tag_b, 0)])
        tags = {row[2] for row in store.rows("send_message")}
        assert tags == {"hello"}
        stored = [row[2] for row in store.rows("send_message")]
        assert stored[0] is stored[1]

    def test_per_row_add_interns_too(self):
        store = ProvenanceStore()
        store.add("send_message", (0, 1, "x" * 40, 0))
        store.add("send_message", (2, 3, "x" * 40, 0))
        stored = [row[2] for row in store.rows("send_message")]
        assert stored[0] is stored[1]

    def test_intern_disabled(self):
        store = ProvenanceStore(intern=False)
        store.add_batch("send_message", [(0, 1, "y" * 40, 0)])
        assert store.num_rows == 1


_scalar = st.one_of(
    st.integers(min_value=-10, max_value=10),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=6),
    st.booleans(),
    st.none(),
)
_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), _scalar,
              st.integers(min_value=0, max_value=4)),
    max_size=40,
)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(rows=_rows)
    def test_interned_equals_plain(self, rows):
        interned = ProvenanceStore()
        interned.add_batch("value", rows)
        plain = ProvenanceStore(intern=False, legacy_sizing=True)
        for row in rows:
            plain.add("value", row)
        assert _store_dict(interned) == _store_dict(plain)
        assert interned.total_bytes() == plain.total_bytes()
        assert interned.num_rows == plain.num_rows

    @settings(max_examples=50, deadline=None)
    @given(rows=_rows)
    def test_size_model_exact(self, rows):
        store = ProvenanceStore()
        store.add_batch("value", rows)
        expected = sum(estimate_bytes(row) for row in set(rows))
        assert store.total_bytes() == expected
