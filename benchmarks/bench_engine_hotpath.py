"""Engine hot-path micro-benchmark: frontier scheduling vs full scan.

Measures the wall-clock effect of the frontier-driven superstep scheduler
(and the bucketed message path it rides on) against the seed engine's
whole-graph scan, in the same process, on the two workload shapes that
bracket the design space:

* **SSSP on a long-diameter grid** — the frontier is a O(sqrt(V)) wavefront
  for ~2*sqrt(V) supersteps; a scan engine does O(V^1.5) vertex visits, a
  frontier engine O(V). This is the fig12/fig7 long-tail shape.
* **PageRank on a web-like graph** — the frontier is the whole graph every
  superstep; this bounds the scheduler's overhead in the dense regime.

Results (supersteps/sec, messages/sec, speedup) are written to
``benchmarks/results/BENCH_engine.json`` so later PRs have a perf
trajectory to regress against.

Run standalone (CI smoke / perf tracking)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py

``--trace [PATH]`` additionally records a span trace of one frontier SSSP
run (default ``benchmarks/results/BENCH_engine_trace.jsonl``; CI validates
it against the event schema and uploads it as an artifact), and the JSON
report gains a ``tracing_overhead`` section comparing disabled- vs
enabled-tracing wall time on the same workload.

The report also carries a ``serial_vs_parallel`` section: the same
PageRank workload on the serial engine and the forked multiprocess
backend (``repro.parallel``) at 2 and 4 workers, with *measured*
cross-worker message counts and pickled bytes on the wire — the serial
engine only simulates shard crossings; here they are real IPC. Each run
doubles as a byte-identity check against the serial values.

Scale with ``REPRO_HOTPATH_VERTICES`` (default 50,000; CI smoke uses a tiny
graph). Also runs under ``pytest benchmarks/ --benchmark-only`` with the
rest of the suite.
"""

import argparse
import json
import os
import time

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.bench import format_table, frontier_sssp_graph, publish, results_dir
from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine
from repro.graph.generators import web_graph
from repro.obs import (
    NULL_TRACER,
    InMemorySink,
    JsonlSink,
    Tracer,
    get_registry,
    set_tracer,
)

SSSP_VERTICES = int(os.environ.get("REPRO_HOTPATH_VERTICES", "50000"))
PAGERANK_VERTICES = max(64, SSSP_VERTICES // 5)
PAGERANK_SUPERSTEPS = 10

#: The acceptance bar for the frontier scheduler on the SSSP shape at full
#: scale (tiny CI graphs have too little tail for the bound to be meaningful).
FULL_SCALE_VERTICES = 50_000
REQUIRED_SSSP_SPEEDUP = 2.0


def run_mode(graph, make_program, frontier: bool):
    engine = PregelEngine(
        graph, config=EngineConfig(frontier_scheduling=frontier)
    )
    start = time.perf_counter()
    result = engine.run(make_program())
    wall = time.perf_counter() - start
    metrics = result.metrics
    return result, {
        "wall_seconds": wall,
        "supersteps": metrics.num_supersteps,
        "supersteps_per_sec": metrics.num_supersteps / wall if wall else 0.0,
        "messages": metrics.total_messages,
        "messages_per_sec": metrics.total_messages / wall if wall else 0.0,
        "vertex_executions": metrics.total_active_vertices,
        "frontier_vertices": metrics.total_frontier_size,
        "skipped_vertices": metrics.total_skipped_vertices,
    }


def measure(name, graph, make_program):
    scan_result, scan = run_mode(graph, make_program, frontier=False)
    frontier_result, frontier = run_mode(graph, make_program, frontier=True)
    # the benchmark doubles as an equivalence check at scale
    assert frontier_result.values == scan_result.values
    assert frontier_result.halt_reason == scan_result.halt_reason
    assert frontier["messages"] == scan["messages"]
    return {
        "name": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "scan": scan,
        "frontier": frontier,
        "speedup": (
            scan["wall_seconds"] / frontier["wall_seconds"]
            if frontier["wall_seconds"]
            else float("inf")
        ),
    }


def build_report():
    workloads = [
        measure(
            "sssp_grid",
            frontier_sssp_graph(SSSP_VERTICES),
            lambda: SSSP(source=0).make_program(),
        ),
        measure(
            "pagerank_web",
            web_graph(
                PAGERANK_VERTICES, avg_degree=8, target_diameter=12, seed=5
            ),
            lambda: PageRank(num_supersteps=PAGERANK_SUPERSTEPS).make_program(),
        ),
    ]
    return {
        "benchmark": "engine_hotpath",
        "config": {
            "sssp_vertices": SSSP_VERTICES,
            "pagerank_vertices": PAGERANK_VERTICES,
            "pagerank_supersteps": PAGERANK_SUPERSTEPS,
        },
        "workloads": {w["name"]: w for w in workloads},
    }


def measure_tracing_overhead(rounds: int = 3):
    """Best-of-N wall time for the frontier SSSP workload with tracing
    disabled (the NULL_TRACER fast path) vs enabled (in-memory sink).

    The disabled number is what every untraced run pays for the
    instrumentation — the acceptance bar is that it stays within noise
    of an uninstrumented engine, which the structural guarantee (one
    flag check per superstep, never per vertex) enforces.
    """
    graph = frontier_sssp_graph(SSSP_VERTICES)

    def best(make_tracer):
        walls = []
        for _ in range(rounds):
            tracer = make_tracer()
            set_tracer(tracer)
            try:
                _, stats = run_mode(
                    graph, lambda: SSSP(source=0).make_program(),
                    frontier=True,
                )
            finally:
                if tracer is not NULL_TRACER:
                    tracer.close()
                set_tracer(NULL_TRACER)
            walls.append(stats["wall_seconds"])
        return min(walls)

    disabled = best(lambda: NULL_TRACER)
    enabled = best(lambda: Tracer(InMemorySink(), registry=get_registry()))
    return {
        "rounds": rounds,
        "disabled_wall_seconds": disabled,
        "enabled_wall_seconds": enabled,
        "enabled_over_disabled": enabled / disabled if disabled else 0.0,
    }


PARALLEL_WORKER_COUNTS = (2, 4)
PARALLEL_SUPERSTEPS = 10
PARALLEL_WARM_ROUNDS = 3
PARALLEL_TRANSPORTS = ("ring", "queue")

#: Acceptance bar for the shared-memory transport: warm parallel runs at 4
#: workers must beat serial on the dense PageRank shape — enforced only at
#: full scale and with at least 4 usable cores (on a starved runner the
#: comparison measures the scheduler, not the transport).
REQUIRED_PARALLEL_RATIO = 1.0
FULL_SCALE_PARALLEL_VERTICES = FULL_SCALE_VERTICES // 5


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def measure_serial_vs_parallel():
    """Serial engine vs the multiprocess backend on a dense workload.

    PageRank on a web graph is the communication-heavy shape: every vertex
    messages every neighbor every superstep, so this bounds the cost of
    shipping batches across real process boundaries. The serial run's
    ``cross_worker_messages`` is simulated with the same partitioner, so
    parallel counts must match it exactly; ``network_bytes`` is measured
    wire bytes on the parallel side and ``null`` on the serial side.

    Each transport is timed against a single engine whose worker pool
    stays warm: one cold run (fork + first-touch costs) followed by
    ``PARALLEL_WARM_ROUNDS`` warm runs; the reported ratio uses the best
    warm wall, which is the steady-state figure the pool exists to buy.
    """
    from repro.parallel.engine import ParallelEngine

    graph = web_graph(
        PAGERANK_VERTICES, avg_degree=8, target_diameter=12, seed=5
    )
    make_program = lambda: PageRank(
        num_supersteps=PARALLEL_SUPERSTEPS).make_program()

    def timed(engine):
        start = time.perf_counter()
        result = engine.run(make_program())
        return result, time.perf_counter() - start

    def row(summary, backend, workers, wall):
        return {
            "backend": backend,
            "num_workers": workers,
            "partitioner": "hash",
            "wall_seconds": wall,
            "supersteps": summary["supersteps"],
            "messages": summary["messages"],
            "cross_worker_messages": summary["cross_worker_messages"],
            "network_bytes": summary["network_bytes"],
        }

    runs = {}
    for workers in PARALLEL_WORKER_COUNTS:
        serial_result, serial_wall = timed(
            PregelEngine(graph, config=EngineConfig(num_workers=workers))
        )
        serial_summary = serial_result.metrics.summary()
        serial = row(serial_summary, "serial", workers, serial_wall)
        # serial never measures wire bytes, so the row must say "unknown"
        assert serial["network_bytes"] is None
        entry = {"serial": serial}
        for transport in PARALLEL_TRANSPORTS:
            config = EngineConfig(
                num_workers=workers, backend="parallel", transport=transport
            )
            with ParallelEngine(graph, config=config) as engine:
                cold_result, cold_wall = timed(engine)
                warm_walls = []
                for _ in range(PARALLEL_WARM_ROUNDS):
                    warm_result, wall = timed(engine)
                    assert warm_result.values == cold_result.values
                    warm_walls.append(wall)
            # equivalence at benchmark scale: byte-identical values,
            # measured crossings equal to the serial simulated ones, and
            # sender-side precombining folded out of the wire but not out
            # of the combine accounting
            assert cold_result.values == serial_result.values
            summary = cold_result.metrics.summary()
            assert (summary["cross_worker_messages"]
                    == serial["cross_worker_messages"])
            assert summary["network_bytes"] > 0
            assert (summary["messages_combined"]
                    + summary["messages_precombined"]
                    == serial_summary["messages_combined"])
            best_warm = min(warm_walls)
            parallel = row(summary, "parallel", workers, best_warm)
            parallel.update(
                transport=transport,
                cold_wall_seconds=cold_wall,
                warm_wall_seconds=warm_walls,
                messages_combined=summary["messages_combined"],
                messages_precombined=summary["messages_precombined"],
                combine_ratio=summary["combine_ratio"],
            )
            suffix = "" if transport == "ring" else f"_{transport}"
            entry[f"parallel{suffix}"] = parallel
            entry[f"parallel_over_serial{suffix}"] = (
                best_warm / serial_wall if serial_wall else 0.0
            )
        runs[f"workers_{workers}"] = entry
    return {
        "workload": "pagerank_web",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "supersteps": PARALLEL_SUPERSTEPS,
        "warm_rounds": PARALLEL_WARM_ROUNDS,
        "transports": list(PARALLEL_TRANSPORTS),
        "cpu_count": os.cpu_count(),
        "usable_cores": usable_cores(),
        "runs": runs,
    }


def check_parallel(section) -> None:
    """Enforce the parallel-beats-serial bar when the measurement is fair."""
    full_scale = section["num_vertices"] >= FULL_SCALE_PARALLEL_VERTICES
    if not full_scale or section["usable_cores"] < 4:
        return
    ratio = section["runs"]["workers_4"]["parallel_over_serial"]
    assert ratio < REQUIRED_PARALLEL_RATIO, (
        f"warm ring transport at 4 workers is {ratio:.2f}x serial wall "
        f"(bar: < {REQUIRED_PARALLEL_RATIO}x)"
    )


def publish_parallel_table(section) -> None:
    rows = []
    for key in sorted(section["runs"]):
        run = section["runs"][key]
        rows.append(
            (
                run["parallel"]["num_workers"],
                run["serial"]["wall_seconds"],
                run["parallel"]["wall_seconds"],
                run["parallel_over_serial"],
                run["parallel_queue"]["wall_seconds"],
                run["parallel_over_serial_queue"],
                run["parallel"]["cross_worker_messages"],
                run["parallel"]["network_bytes"],
            )
        )
    table = format_table(
        "Serial vs multiprocess backend (PageRank, warm pool, measured IPC)",
        ["Workers", "Serial s", "Ring s", "Ring/Ser", "Queue s",
         "Queue/Ser", "Cross-worker msgs", "Network bytes"],
        rows,
    )
    publish("engine_parallel", table)


def write_trace(path: str) -> str:
    """Record a JSONL span trace of one frontier SSSP run."""
    graph = frontier_sssp_graph(SSSP_VERTICES)
    tracer = Tracer(JsonlSink(path), registry=get_registry())
    set_tracer(tracer)
    try:
        run_mode(graph, lambda: SSSP(source=0).make_program(), frontier=True)
    finally:
        tracer.close()
        set_tracer(NULL_TRACER)
    return path


def write_json(report) -> str:
    path = os.path.join(results_dir(), "BENCH_engine.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def publish_table(report) -> None:
    rows = []
    for w in report["workloads"].values():
        rows.append(
            (
                w["name"],
                w["num_vertices"],
                w["scan"]["wall_seconds"],
                w["frontier"]["wall_seconds"],
                w["speedup"],
                w["frontier"]["supersteps_per_sec"],
                w["frontier"]["messages_per_sec"],
                w["frontier"]["skipped_vertices"],
            )
        )
    table = format_table(
        "Engine hot path: frontier scheduling vs full scan",
        ["Workload", "|V|", "Scan s", "Frontier s", "Speedup",
         "Supersteps/s", "Messages/s", "Skipped vertices"],
        rows,
    )
    publish("engine_hotpath", table)


def check_report(report) -> None:
    sssp = report["workloads"]["sssp_grid"]
    # the grid tail must actually skip work under frontier scheduling
    assert sssp["frontier"]["skipped_vertices"] > 0
    assert sssp["frontier"]["vertex_executions"] < (
        sssp["frontier"]["supersteps"] * sssp["num_vertices"]
    )
    if sssp["num_vertices"] >= FULL_SCALE_VERTICES:
        assert sssp["speedup"] >= REQUIRED_SSSP_SPEEDUP, (
            f"frontier speedup {sssp['speedup']:.2f}x below the "
            f"{REQUIRED_SSSP_SPEEDUP}x bar"
        )


def test_engine_hotpath(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_json(report)
    publish_table(report)
    check_report(report)


DEFAULT_TRACE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_engine_trace.jsonl"
)


def print_parallel(section) -> None:
    print(
        f"serial vs parallel on {section['usable_cores']} usable core(s) "
        f"(warm best of {section['warm_rounds']})"
    )
    for key in sorted(section["runs"]):
        run = section["runs"][key]
        par = run["parallel"]
        print(
            f"parallel x{par['num_workers']}: "
            f"{run['serial']['wall_seconds']:.3f}s serial -> "
            f"{par['wall_seconds']:.3f}s ring "
            f"({run['parallel_over_serial']:.2f}x), "
            f"{run['parallel_queue']['wall_seconds']:.3f}s queue "
            f"({run['parallel_over_serial_queue']:.2f}x), "
            f"{par['cross_worker_messages']} cross-worker msgs, "
            f"{par['network_bytes']} bytes shipped, "
            f"{par['messages_precombined']} precombined"
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", nargs="?", const=DEFAULT_TRACE_PATH, default=None,
        metavar="PATH",
        help="also record a JSONL span trace of a frontier SSSP run "
             f"(default PATH: {DEFAULT_TRACE_PATH})",
    )
    parser.add_argument(
        "--parallel-only", action="store_true",
        help="only run the serial-vs-parallel comparison and merge it into "
             "an existing BENCH_engine.json (used by the CI perf gate)",
    )
    args = parser.parse_args(argv)
    if args.parallel_only:
        path = os.path.join(results_dir(), "BENCH_engine.json")
        report = {"benchmark": "engine_hotpath"}
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                report = json.load(fh)
        report["serial_vs_parallel"] = measure_serial_vs_parallel()
        path = write_json(report)
        publish_parallel_table(report["serial_vs_parallel"])
        print(f"wrote {path}")
        print_parallel(report["serial_vs_parallel"])
        check_parallel(report["serial_vs_parallel"])
        return
    report = build_report()
    report["tracing_overhead"] = measure_tracing_overhead()
    report["serial_vs_parallel"] = measure_serial_vs_parallel()
    path = write_json(report)
    publish_table(report)
    publish_parallel_table(report["serial_vs_parallel"])
    check_report(report)
    sssp = report["workloads"]["sssp_grid"]
    print(f"wrote {path}")
    print(
        f"sssp_grid: {sssp['speedup']:.2f}x speedup "
        f"({sssp['scan']['wall_seconds']:.3f}s scan -> "
        f"{sssp['frontier']['wall_seconds']:.3f}s frontier)"
    )
    overhead = report["tracing_overhead"]
    print(
        f"tracing: {overhead['disabled_wall_seconds']:.3f}s disabled -> "
        f"{overhead['enabled_wall_seconds']:.3f}s enabled "
        f"({overhead['enabled_over_disabled']:.2f}x)"
    )
    print_parallel(report["serial_vs_parallel"])
    check_parallel(report["serial_vs_parallel"])
    if args.trace:
        os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
        print(f"trace written to {write_trace(args.trace)}")


if __name__ == "__main__":
    main()
