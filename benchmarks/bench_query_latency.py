"""Query-latency benchmark: hash-indexed vs scan evaluation of Queries 1-12.

Evaluates every paper query (Queries 1-12, ``repro.core.queries``) twice —
once with hash-index probing enabled (the default) and once with the
``--no-index`` scan path — over captured PageRank / SSSP / ALS runs, and
writes ``benchmarks/results/BENCH_query.json``:

* per query: wall seconds for both paths, the speedup, the runtime
  ``index_probes`` / ``index_scans`` counters, and the total duration of
  the ``query-eval`` spans the :mod:`repro.obs` tracer recorded;
* a hard **byte-identity check**: both paths must produce exactly the
  same derived fact sets (and, for capture queries, the same store
  contents). The script exits non-zero on any divergence.

Monitoring queries (1, 4-8) and the capture queries (2, 3, 11) run in the
mode the paper runs them (online, or offline-naive over a sealed capture);
the lineage queries (9, 10, 12) run layered. Online queries time only the
in-run query evaluation (``query_seconds``), not the analytic itself.

Run standalone (CI smoke / perf tracking)::

    PYTHONPATH=src python benchmarks/bench_query_latency.py [--smoke] [--check]

``--smoke`` shrinks every workload so the full matrix finishes in seconds;
``--check`` additionally fails unless indexing is a net win in aggregate
(total indexed wall <= total scan wall). Scale with ``REPRO_SCALE``.
Also runs under ``pytest benchmarks/ --benchmark-only``.
"""

import argparse
import json
import os
import sys

from repro.analytics.als import ALS
from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.bench import (
    captured_store,
    format_table,
    ml20_for,
    publish,
    results_dir,
    web_graph_for,
)
from repro.bench.workloads import PAGERANK_SUPERSTEPS, bench_scale, repeats
from repro.core import queries as Q
from repro.core.queries import apt_udfs
from repro.engine.config import EngineConfig
from repro.obs import InMemorySink, Tracer, set_tracer
from repro.obs.sinks import spans_of
from repro.runtime.offline import run_layered, run_naive
from repro.runtime.online import run_online

DATASET = "IN-04"
ALS_FEATURES = 5
ALS_ROUNDS = 2
#: The vectorized lane's queries and its CI gate: over a sealed columnar
#: capture, batch-kernel evaluation must beat the indexed row path by at
#: least this factor on the lineage queries (the full-scale target is
#: 3x; smoke runs gate at 2x to absorb CI-runner noise).
VECTOR_QUERIES = ("query9", "query10")
VECTOR_MIN_SPEEDUP = 2.0
#: The lineage queries (9, 10) trace through a dedicated longer PageRank
#: capture: probe narrowing grows with partition depth (rows per vertex ~
#: supersteps), and the paper's lineage experiments are exactly the
#: long-job case. 100 supersteps keeps the scan baseline in seconds.
LINEAGE_SUPERSTEPS = 100


def _trace_target(store, superstep):
    """A deterministic vertex that executed at ``superstep``."""
    return min(x for x, i in store.rows("superstep") if i == superstep)


def _store_dict(store):
    """A store's full contents as a comparable relation -> rows mapping."""
    return {
        relation: sorted(store.rows(relation), key=repr)
        for relation in sorted(store.relations())
    }


def _measured(run, use_index):
    """Run one evaluation under a fresh tracer; returns the comparable
    result payload plus the per-path measurement record."""
    tracer = Tracer(InMemorySink())
    previous = set_tracer(tracer)
    try:
        result, wall = run(use_index)
    finally:
        set_tracer(previous)
    span_seconds = sum(
        span["dur"] for span in spans_of(tracer.sink.events)
        if span["name"] == "query-eval"
    ) / 1e6
    query = result.query if hasattr(result, "query") else result
    payload = {"derived": query.as_dict()}
    if getattr(result, "store", None) is not None:
        payload["store"] = _store_dict(result.store)
    return payload, {
        "wall_seconds": wall,
        "span_query_eval_seconds": span_seconds,
        "index_probes": query.stats.get("index_probes", 0),
        "index_scans": query.stats.get("index_scans", 0),
    }


def _offline_runner(make_store, query, graph, params, mode):
    driver = run_layered if mode == "layered" else run_naive

    def run(use_index):
        result = driver(make_store(), query, graph, params,
                        use_index=use_index)
        return result, result.wall_seconds

    return run


def _online_runner(graph, make_analytic, query, params=None, udfs=None,
                   capture=False):
    def run(use_index):
        result = run_online(
            graph, make_analytic(), query, params=params, udfs=udfs,
            capture=capture,
            config=EngineConfig(query_index=use_index),
        )
        # Online latency is the in-run query evaluation, not the analytic.
        return result, result.query.wall_seconds

    return run


_LINEAGE_CTX = None


def lineage_context():
    """The long PageRank lineage capture shared by the Q9/Q10 specs and
    the vectorized lane: ``(graph, store, fwd_params, back_params)``.
    Cached per process so the capture runs once however many lanes ask."""
    global _LINEAGE_CTX
    if _LINEAGE_CTX is None:
        pr_graph = web_graph_for(DATASET)
        store = run_online(
            pr_graph, PageRank(num_supersteps=LINEAGE_SUPERSTEPS),
            Q.CAPTURE_FULL_QUERY, capture=True,
        ).store
        sigma = store.max_superstep
        fwd_params = {"alpha": _trace_target(store, 0), "sigma": sigma}
        back_params = {"alpha": _trace_target(store, sigma), "sigma": sigma}
        _LINEAGE_CTX = (pr_graph, store, fwd_params, back_params)
    return _LINEAGE_CTX


def build_specs():
    """One (name, mode, workload, runner) entry per paper query."""
    pr_graph = web_graph_for(DATASET)
    sssp_graph = web_graph_for(DATASET, weighted=True)
    pr_store = captured_store("pagerank", DATASET)
    sssp_store = captured_store("sssp", DATASET)

    def pagerank():
        return PageRank(num_supersteps=PAGERANK_SUPERSTEPS)

    bipartite = ml20_for(ALS_FEATURES)
    als_graph = bipartite.to_digraph()

    def als():
        return ALS(bipartite, num_features=ALS_FEATURES,
                   max_rounds=ALS_ROUNDS)

    _graph, lineage_store, fwd_params, back_params = lineage_context()

    custom_store = run_online(
        pr_graph, pagerank(), Q.CAPTURE_BACKWARD_CUSTOM_QUERY, capture=True,
    ).store
    custom_sigma = max(i for _x, i in custom_store.rows("prov_send"))
    custom_params = {
        "alpha": min(
            x for x, i in custom_store.rows("prov_send") if i == custom_sigma
        ),
        "sigma": custom_sigma,
    }

    pr = f"pagerank/{DATASET}"
    ss = f"sssp/{DATASET}"
    ml = f"als/ML-20^{ALS_FEATURES}"
    return [
        ("query1", "online", pr, _online_runner(
            pr_graph, pagerank, Q.APT_QUERY, params={"eps": 0.01},
            udfs=apt_udfs(pagerank()))),
        ("query2", "online", pr, _online_runner(
            pr_graph, pagerank, Q.CAPTURE_FULL_QUERY, capture=True)),
        ("query3", "online", pr, _online_runner(
            pr_graph, pagerank, Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": _trace_target(pr_store, 0)}, capture=True)),
        ("query4", "naive", pr, _offline_runner(
            lambda: pr_store, Q.PAGERANK_CHECK_QUERY, pr_graph, None,
            "naive")),
        ("query5", "naive", ss, _offline_runner(
            lambda: sssp_store, Q.SSSP_WCC_UPDATE_CHECK_QUERY, sssp_graph,
            None, "naive")),
        ("query6", "naive", ss, _offline_runner(
            lambda: sssp_store, Q.SSSP_WCC_STABILITY_QUERY, sssp_graph,
            None, "naive")),
        ("query7", "online", ml, _online_runner(
            als_graph, als, Q.ALS_ERROR_RANGE_QUERY)),
        ("query8", "online", ml, _online_runner(
            als_graph, als, Q.ALS_ERROR_TREND_QUERY, params={"eps": 0.0})),
        ("query9", "layered", pr, _offline_runner(
            lambda: lineage_store, Q.FORWARD_LINEAGE_FULL_QUERY, pr_graph,
            fwd_params, "layered")),
        ("query10", "layered", pr, _offline_runner(
            lambda: lineage_store, Q.BACKWARD_LINEAGE_FULL_QUERY, pr_graph,
            back_params, "layered")),
        ("query11", "online", pr, _online_runner(
            pr_graph, pagerank, Q.CAPTURE_BACKWARD_CUSTOM_QUERY,
            capture=True)),
        ("query12", "layered", pr, _offline_runner(
            lambda: custom_store, Q.BACKWARD_LINEAGE_CUSTOM_QUERY, pr_graph,
            custom_params, "layered")),
    ]


def measure_query(runner):
    """Both paths, best-of-``repeats()``; identity checked on every pair."""
    best = {}
    identical = True
    for _ in range(repeats()):
        indexed_payload, indexed = _measured(runner, True)
        scan_payload, scan = _measured(runner, False)
        identical = identical and indexed_payload == scan_payload
        for key, record in (("indexed", indexed), ("scan", scan)):
            if (key not in best
                    or record["wall_seconds"] < best[key]["wall_seconds"]):
                best[key] = record
    wall = best["indexed"]["wall_seconds"]
    best["speedup"] = (best["scan"]["wall_seconds"] / wall) if wall else 1.0
    best["identical"] = identical
    return best


def build_vector_report():
    """The vectorized lane: the lineage queries over a sealed *columnar*
    capture, evaluated three ways through ``run_layered_from_spill`` —
    batch kernels (default), the indexed row path (``vectorize=False``),
    and the plain scan path. Results must be byte-identical across all
    three on every repetition; timings are best-of-``repeats()``."""
    import tempfile

    from repro.provenance.spill import SpillManager
    from repro.runtime.offline import run_layered_from_spill

    graph, store, fwd_params, back_params = lineage_context()
    directory = tempfile.mkdtemp(prefix="repro-bench-vector-")
    writer = SpillManager(store, directory=directory, format="columnar",
                          compression="zlib")
    writer.seal_all()
    writer.write_manifest()
    spill = SpillManager.open(directory)
    cases = {
        "query9": (Q.FORWARD_LINEAGE_FULL_QUERY, fwd_params),
        "query10": (Q.BACKWARD_LINEAGE_FULL_QUERY, back_params),
    }
    lanes = (
        ("vectorized", {}),
        ("indexed", {"vectorize": False}),
        ("scan", {"vectorize": False, "use_index": False}),
    )
    queries = {}
    for name in VECTOR_QUERIES:
        query, params = cases[name]
        best = {}
        identical = True
        for _ in range(repeats()):
            payloads = {}
            for lane, kwargs in lanes:
                result = run_layered_from_spill(
                    spill, query, graph, params, **kwargs)
                payloads[lane] = result.as_dict()
                record = {
                    "wall_seconds": result.wall_seconds,
                    "evaluator": result.stats.get("evaluator"),
                    "kernel_seconds": result.stats.get("kernel_seconds"),
                    "batched_scans": result.stats.get("batched_scans", 0),
                    "fallback_scans": result.stats.get("fallback_scans", 0),
                }
                if (lane not in best or record["wall_seconds"]
                        < best[lane]["wall_seconds"]):
                    best[lane] = record
            identical = identical and (
                payloads["vectorized"] == payloads["indexed"]
                == payloads["scan"]
            )
        vec = best["vectorized"]["wall_seconds"]
        best["speedup_vs_indexed"] = (
            best["indexed"]["wall_seconds"] / vec if vec else 1.0)
        best["speedup_vs_scan"] = (
            best["scan"]["wall_seconds"] / vec if vec else 1.0)
        best["identical"] = identical
        queries[name] = best
    return {
        "store_format": "columnar",
        "min_speedup_gate": VECTOR_MIN_SPEEDUP,
        "queries": queries,
        "all_identical": all(q["identical"] for q in queries.values()),
        "min_speedup_vs_indexed": min(
            q["speedup_vs_indexed"] for q in queries.values()),
    }


def build_report():
    queries = {}
    for name, mode, workload, runner in build_specs():
        record = measure_query(runner)
        record["mode"] = mode
        record["workload"] = workload
        queries[name] = record
    total_indexed = sum(q["indexed"]["wall_seconds"] for q in queries.values())
    total_scan = sum(q["scan"]["wall_seconds"] for q in queries.values())
    return {
        "dataset": DATASET,
        "scale": bench_scale(),
        "queries": queries,
        "total_indexed_seconds": total_indexed,
        "total_scan_seconds": total_scan,
        "total_speedup": (total_scan / total_indexed) if total_indexed
        else 1.0,
        "max_speedup": max(q["speedup"] for q in queries.values()),
        "all_identical": all(q["identical"] for q in queries.values()),
        "vectorized": build_vector_report(),
    }


def write_json(report):
    path = os.path.join(results_dir(), "BENCH_query.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    return path


def publish_table(report):
    rows = []
    for name in sorted(report["queries"],
                       key=lambda n: int(n.replace("query", ""))):
        q = report["queries"][name]
        rows.append((
            name, q["mode"], q["workload"],
            q["scan"]["wall_seconds"], q["indexed"]["wall_seconds"],
            q["speedup"],
            q["indexed"]["index_probes"], q["indexed"]["index_scans"],
            "yes" if q["identical"] else "NO",
        ))
    table = format_table(
        "Query latency: scan vs hash-indexed evaluation (Queries 1-12)",
        ["Query", "Mode", "Workload", "Scan s", "Indexed s", "Speedup",
         "Probes", "Scans", "Same"],
        rows,
    )
    publish("query_latency", table)
    print(table)


def publish_vector_table(vector):
    rows = []
    for name in VECTOR_QUERIES:
        q = vector["queries"][name]
        rows.append((
            name,
            q["scan"]["wall_seconds"], q["indexed"]["wall_seconds"],
            q["vectorized"]["wall_seconds"],
            q["speedup_vs_indexed"], q["speedup_vs_scan"],
            q["vectorized"]["batched_scans"],
            "yes" if q["identical"] else "NO",
        ))
    table = format_table(
        "Vectorized columnar evaluation: lineage queries over a sealed "
        "ARSC capture",
        ["Query", "Scan s", "Indexed s", "Vector s", "vs idx", "vs scan",
         "Batches", "Same"],
        rows,
    )
    publish("query_vector", table)
    print(table)


def check_report(report, check_speedup=False):
    assert report["all_identical"], (
        "indexed and scan evaluation diverged — the hash index returned a "
        "wrong candidate set"
    )
    probing = sum(
        q["indexed"]["index_probes"] for q in report["queries"].values()
    )
    assert probing > 0, "no query ever hash-probed; the index path is dead"
    if check_speedup:
        assert (report["total_indexed_seconds"]
                <= report["total_scan_seconds"]), (
            "indexing was a net loss: "
            f"{report['total_indexed_seconds']:.3f}s indexed vs "
            f"{report['total_scan_seconds']:.3f}s scan"
        )
    if "vectorized" in report:
        check_vector_report(report["vectorized"],
                            check_speedup=check_speedup)


def check_vector_report(vector, check_speedup=False):
    assert vector["all_identical"], (
        "vectorized, indexed, and scan evaluation diverged on a columnar "
        "store — a batch kernel computed a wrong solution set"
    )
    for name, q in vector["queries"].items():
        assert q["vectorized"]["evaluator"] == "vectorized", (
            f"{name}: the vectorized lane fell back to "
            f"{q['vectorized']['evaluator']!r} — batch kernels never ran"
        )
        assert q["indexed"]["evaluator"] == "indexed", name
        assert q["scan"]["evaluator"] == "scan", name
        assert q["vectorized"]["batched_scans"] > 0, (
            f"{name}: no scan ever took a batch kernel"
        )
    if check_speedup:
        assert vector["min_speedup_vs_indexed"] >= VECTOR_MIN_SPEEDUP, (
            "vectorized evaluation under the gate: "
            f"{vector['min_speedup_vs_indexed']:.2f}x vs the required "
            f"{VECTOR_MIN_SPEEDUP:.1f}x over the indexed row path"
        )


def test_query_latency(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_json(report)
    publish_table(report)
    check_report(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads (CI): shrink every graph")
    parser.add_argument("--check", action="store_true",
                        help="fail unless indexing is a net aggregate win "
                             "and the vectorized lane clears its gate")
    parser.add_argument("--vector-only", action="store_true",
                        help="run only the vectorized columnar lane "
                             "(writes BENCH_query_vector.json; the "
                             "query-vector CI smoke job's mode)")
    args = parser.parse_args(argv)
    if args.smoke and "REPRO_SCALE" not in os.environ:
        os.environ["REPRO_SCALE"] = "0.25"
    if args.vector_only:
        vector = build_vector_report()
        report = {"dataset": DATASET, "scale": bench_scale(),
                  "smoke": args.smoke, "vectorized": vector}
        path = os.path.join(results_dir(), "BENCH_query_vector.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        publish_vector_table(vector)
        check_vector_report(vector, check_speedup=args.check)
        print(f"wrote {path}")
        print(f"vectorized min speedup {vector['min_speedup_vs_indexed']:.2f}x "
              f"vs indexed, identical={vector['all_identical']}")
        return 0
    report = build_report()
    report["smoke"] = args.smoke
    path = write_json(report)
    publish_table(report)
    publish_vector_table(report["vectorized"])
    check_report(report, check_speedup=args.check)
    print(f"wrote {path}")
    print(f"max speedup {report['max_speedup']:.2f}x, "
          f"aggregate {report['total_speedup']:.2f}x, "
          f"vectorized min {report['vectorized']['min_speedup_vs_indexed']:.2f}x, "
          f"identical={report['all_identical']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
