"""Capture-path benchmark: per-row legacy ingestion vs the batched fast lane.

Replays the exact row stream of a full-capture PageRank run (Query 2 on the
web graph) through two capture pipelines and writes
``benchmarks/results/BENCH_capture.json``:

* **baseline** — the pre-fast-lane path: per-row ``ProvenanceStore.add``
  with recursive ``estimate_bytes`` sizing and no interning, followed by a
  synchronous uncompressed ``seal_all`` at run end;
* **fastlane** — the shipped path: ``add_batch`` per (layer, relation) with
  the memoized size model, layers handed to the asynchronous zlib spill
  writer as they complete, and a final ``seal_all`` flush.

Both lanes consume the same stream, and the report carries hard identity
checks: both stores must match the originally captured store row-for-row,
``total_bytes()`` (the Tables 3/4 size model) must agree exactly, and the
stores rebuilt from both spill directories must match as well. Timings are
best-of-``repeats(3)``; identity is verified on every repeat.

Run standalone (CI smoke / perf tracking)::

    PYTHONPATH=src python benchmarks/bench_capture_path.py [--smoke] [--check]

``--smoke`` shrinks the workload so the run finishes in seconds; ``--check``
fails on any identity violation or if the fast lane is not a net win (and,
at full scale, if it is not at least 2x faster). Scale with ``REPRO_SCALE``.
Also runs under ``pytest benchmarks/ --benchmark-only``.
"""

import argparse
import gc
import json
from contextlib import contextmanager
import os
import sys
import tempfile
import time
from statistics import median

from repro.analytics.pagerank import PageRank
from repro.bench import format_table, publish, results_dir, web_graph_for
from repro.bench.workloads import PAGERANK_SUPERSTEPS, bench_scale, repeats
from repro.core import queries as Q
from repro.provenance.model import SchemaRegistry
from repro.provenance.spill import SpillManager, rebuild_store
from repro.provenance.store import ProvenanceStore
from repro.runtime.online import run_online

DATASET = "IN-04"

#: Full-scale speedup floor enforced by ``--check`` (the smoke workload is
#: too small for stable ratios, so there it only has to be a net win).
FULL_SCALE_SPEEDUP = 2.0

#: Ceiling on run-ledger cost as a fraction of the capture wall time — the
#: audit trail must stay effectively free (ISSUE 7 acceptance: <= 1%).
LEDGER_OVERHEAD_CEILING = 0.01

#: Ledger append samples per report (medianed; appends are milliseconds,
#: so this is cheap even at full scale).
LEDGER_SAMPLES = 15


def _store_dict(store):
    """A store's full contents as a comparable relation -> rows mapping."""
    return {
        relation: sorted(store.rows(relation), key=repr)
        for relation in sorted(store.relations())
    }


def _capture_stream(store):
    """The captured run's row stream, replayable in layer order.

    Returns ``(static_batches, layer_batches)``: the time-less relations
    as one batch each, then per superstep the layer's rows grouped by
    relation — the granularity at which the online wrapper flushes.
    """
    registry = store.registry
    static = []
    for relation in sorted(store.relations()):
        if registry.get(relation).time_index is None:
            static.append((relation, sorted(store.rows(relation), key=repr)))
    layers = []
    for superstep in range(store.num_layers):
        batches = []
        for relation in sorted(store.layer(superstep)):
            rows = [
                row
                for by_vertex in (store.layer(superstep)[relation],)
                for vertex_rows in by_vertex.values()
                for row in vertex_rows
            ]
            rows.sort(key=repr)
            batches.append((relation, rows))
        layers.append(batches)
    return static, layers


@contextmanager
def _gc_paused():
    """Collect, then keep the cyclic GC out of the timed region.

    The harness holds the reference store plus comparison dicts (millions
    of live objects), so allocation-triggered gen2 passes land inside the
    timed lanes and swamp the ~0.1s differences being measured. Both lanes
    run under the same discipline, so the comparison stays fair.
    """
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


def _fresh_store(reference, **kwargs):
    registry = SchemaRegistry()
    registry.register_all(
        reference.registry.get(name) for name in reference.relations()
    )
    return ProvenanceStore(registry, **kwargs)


def _run_baseline(reference, static, layers, directory):
    """Per-row ingestion, then one synchronous uncompressed seal at the end
    — the capture path as it existed before this change."""
    store = _fresh_store(reference, intern=False, legacy_sizing=True)
    with _gc_paused():
        start = time.perf_counter()
        for relation, rows in static:
            for row in rows:
                store.add(relation, row)
        for batches in layers:
            for relation, rows in batches:
                for row in rows:
                    store.add(relation, row)
        ingest = time.perf_counter() - start
        spill = SpillManager(
            store, directory=directory, async_writes=False, compression="raw",
        )
        start = time.perf_counter()
        spill.seal_all()
        seal = time.perf_counter() - start
    return store, spill, ingest, seal


def _run_fastlane(reference, static, layers, directory):
    """Batched ingestion with layers handed to the asynchronous zlib writer
    as they complete — the shipped capture path."""
    store = _fresh_store(reference)
    spill = SpillManager(
        store, directory=directory, async_writes=True, compression="zlib",
    )
    with _gc_paused():
        start = time.perf_counter()
        for relation, rows in static:
            store.add_batch(relation, rows)
        for superstep, batches in enumerate(layers):
            for relation, rows in batches:
                store.add_batch(relation, rows)
            spill.seal_layer_nowait(superstep)
        ingest = time.perf_counter() - start
        start = time.perf_counter()
        spill.seal_all()
        seal = time.perf_counter() - start
    return store, spill, ingest, seal


def measure(reference, static, layers, num_rows):
    """Both lanes per repeat, back to back, so each repeat yields a
    *paired* overhead ratio measured under the same machine conditions;
    the report carries the median paired ratio (robust to the load drift
    that a ratio of two independently-picked bests is not) plus the best
    per-lane timings for the table. Identity is checked on every repeat.
    """
    original = _store_dict(reference)
    best = {}
    ratios = []
    ingest_ratios = []
    contents_identical = True
    sizes_identical = True
    rebuild_identical = True
    slab_bytes = {}
    for _ in range(repeats(3)):
        lanes = {
            "baseline": _run_baseline,
            "fastlane": _run_fastlane,
        }
        records = {}
        for name, runner in lanes.items():
            with tempfile.TemporaryDirectory(prefix="bench-capture-") as tmp:
                store, spill, ingest, seal = runner(
                    reference, static, layers, tmp,
                )
                contents_identical = (
                    contents_identical and _store_dict(store) == original
                )
                sizes_identical = (
                    sizes_identical
                    and store.total_bytes() == reference.total_bytes()
                )
                rebuilt = rebuild_store(spill)
                rebuild_identical = (
                    rebuild_identical and _store_dict(rebuilt) == original
                )
                slab_bytes[name] = spill.total_sealed_bytes()
                spill.close()
            record = records[name] = {
                "ingest_seconds": ingest,
                "seal_seconds": seal,
                "total_seconds": ingest + seal,
                "rows_per_second": (num_rows / ingest) if ingest else 0.0,
            }
            if (name not in best
                    or record["total_seconds"] < best[name]["total_seconds"]):
                best[name] = record
        fast = records["fastlane"]
        if fast["total_seconds"]:
            ratios.append(
                records["baseline"]["total_seconds"] / fast["total_seconds"]
            )
        if fast["ingest_seconds"]:
            ingest_ratios.append(
                records["baseline"]["ingest_seconds"] / fast["ingest_seconds"]
            )
    for name, record in best.items():
        record["slab_bytes"] = slab_bytes[name]
    return best, {
        "overhead_ratio": median(ratios) if ratios else 1.0,
        "ingest_speedup": median(ingest_ratios) if ingest_ratios else 1.0,
        "contents_identical": contents_identical,
        "sizes_identical": sizes_identical,
        "rebuild_identical": rebuild_identical,
    }


def measure_ledger_overhead(graph, reference, capture_seconds):
    """Cost of the audit trail relative to the capture it documents.

    Times the *full* per-run ledger write exactly as ``repro capture``
    performs it — dataset fingerprint (edge-list hash), values digest,
    record assembly, JSONL append+flush — and reports the median as a
    fraction of the fast-lane capture wall. ``check_report`` holds this
    under :data:`LEDGER_OVERHEAD_CEILING`.
    """
    from repro.engine.config import EngineConfig
    from repro.obs import ledger as obsledger

    values = {v: (hash(v) % 997) / 997.0 for v in graph.vertices()}
    slabs = {
        f"layer-{i:06d}.slab": {"sha256": "0" * 64, "bytes": 1 << 20}
        for i in range(reference.num_layers)
    }
    slabs["static.slab"] = {"sha256": "0" * 64, "bytes": 1 << 20}
    samples = []
    with tempfile.TemporaryDirectory(prefix="bench-ledger-") as tmp:
        ledger = obsledger.RunLedger(tmp)
        for sample in range(LEDGER_SAMPLES):
            start = time.perf_counter()
            ledger.append(obsledger.make_record(
                "capture",
                run_id=obsledger.new_run_id("capture", {"sample": sample}),
                config=EngineConfig(),
                dataset=obsledger.dataset_fingerprint(graph, source=DATASET),
                analytic="pagerank",
                results={
                    "values_sha256": obsledger.digest_values(values),
                    "supersteps": reference.num_layers,
                    "store": {
                        "directory": tmp,
                        "slabs": slabs,
                        "manifest_sha256": obsledger.manifest_digest(slabs),
                    },
                },
                metrics={"supersteps": reference.num_layers,
                         "rows": reference.num_rows},
            ))
            samples.append(time.perf_counter() - start)
    append = median(samples)
    return {
        "append_seconds": append,
        "capture_seconds": capture_seconds,
        "overhead_fraction": (
            append / capture_seconds if capture_seconds else 0.0
        ),
        "samples": len(samples),
    }


def build_report():
    graph = web_graph_for(DATASET)
    # This is the real capture run the ledger record would document —
    # analytic + capture query + provenance ingestion — so its wall is
    # the denominator for the ledger-overhead fraction.
    start = time.perf_counter()
    reference = run_online(
        graph, PageRank(num_supersteps=PAGERANK_SUPERSTEPS),
        Q.CAPTURE_FULL_QUERY, capture=True,
    ).store
    capture_run_seconds = time.perf_counter() - start
    static, layers = _capture_stream(reference)
    best, stats = measure(reference, static, layers, reference.num_rows)
    baseline, fastlane = best["baseline"], best["fastlane"]
    fast_slabs = fastlane["slab_bytes"]
    report = {
        "dataset": DATASET,
        "scale": bench_scale(),
        "workload": f"pagerank/{DATASET} full capture",
        "rows": reference.num_rows,
        "layers": reference.num_layers,
        "store_bytes": reference.total_bytes(),
        "baseline": baseline,
        "fastlane": fastlane,
        "compression_ratio": (
            baseline["slab_bytes"] / fast_slabs if fast_slabs else 1.0
        ),
        "ledger": measure_ledger_overhead(
            graph, reference, capture_run_seconds
        ),
    }
    report.update(stats)
    return report


def write_json(report):
    path = os.path.join(results_dir(), "BENCH_capture.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    return path


def publish_table(report):
    rows = [
        (
            name,
            report[name]["ingest_seconds"],
            report[name]["seal_seconds"],
            report[name]["total_seconds"],
            f"{report[name]['rows_per_second']:,.0f}",
            report[name]["slab_bytes"],
        )
        for name in ("baseline", "fastlane")
    ]
    table = format_table(
        f"Capture path: per-row + sync raw seal vs batched + async zlib "
        f"({report['rows']:,} rows, {report['layers']} layers)",
        ["Lane", "Ingest s", "Seal s", "Total s", "Rows/s", "Slab bytes"],
        rows,
    )
    publish("capture_path", table)
    print(table)
    ledger = report["ledger"]
    print(
        f"overhead ratio {report['overhead_ratio']:.2f}x, "
        f"ingest speedup {report['ingest_speedup']:.2f}x, "
        f"slab compression {report['compression_ratio']:.2f}x"
    )
    print(
        f"ledger append {ledger['append_seconds'] * 1000:.2f} ms = "
        f"{ledger['overhead_fraction']:.3%} of capture wall "
        f"(ceiling {LEDGER_OVERHEAD_CEILING:.0%})"
    )


def check_report(report, check_speedup=False, smoke=False):
    assert report["contents_identical"], (
        "fast-lane store contents diverged from the captured run"
    )
    assert report["sizes_identical"], (
        "size-model totals diverged — Tables 3/4 would change"
    )
    assert report["rebuild_identical"], (
        "stores rebuilt from sealed slabs diverged from the captured run"
    )
    assert report["compression_ratio"] > 1.0, (
        "zlib slabs were not smaller than raw slabs"
    )
    ledger = report["ledger"]
    assert ledger["overhead_fraction"] <= LEDGER_OVERHEAD_CEILING, (
        f"run-ledger overhead {ledger['overhead_fraction']:.3%} of capture "
        f"wall exceeds the {LEDGER_OVERHEAD_CEILING:.0%} ceiling "
        f"({ledger['append_seconds'] * 1000:.2f} ms per append vs "
        f"{ledger['capture_seconds']:.3f}s capture)"
    )
    if check_speedup:
        floor = 1.0 if smoke else FULL_SCALE_SPEEDUP
        assert report["overhead_ratio"] >= floor, (
            f"capture fast lane below the {floor:.1f}x floor: median "
            f"paired ratio {report['overhead_ratio']:.2f}x (best "
            f"{report['baseline']['total_seconds']:.3f}s baseline vs "
            f"{report['fastlane']['total_seconds']:.3f}s fast lane)"
        )


def test_capture_path(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_json(report)
    publish_table(report)
    check_report(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload (CI): shrink the graph")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the fast lane clears its floor")
    args = parser.parse_args(argv)
    if args.smoke and "REPRO_SCALE" not in os.environ:
        os.environ["REPRO_SCALE"] = "0.25"
    report = build_report()
    report["smoke"] = args.smoke
    path = write_json(report)
    publish_table(report)
    check_report(report, check_speedup=args.check, smoke=args.smoke)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
