"""Table 2 — dataset characteristics.

Regenerates the dataset table: |V|, |E|, average degree and estimated
average diameter of every synthetic stand-in, next to the paper's numbers
for the real crawls.
"""

from repro.bench import format_table, ml20_for, publish, web_graph_for
from repro.graph.datasets import ML_20, WEB_DATASET_ORDER, WEB_DATASETS
from repro.graph.stats import average_degree, estimate_average_diameter


def build_table():
    rows = []
    for name in WEB_DATASET_ORDER:
        spec = WEB_DATASETS[name]
        g = web_graph_for(name)
        rows.append(
            (
                name,
                g.num_vertices,
                g.num_edges,
                average_degree(g),
                estimate_average_diameter(g, samples=8, seed=0),
                spec.paper_avg_degree,
                spec.paper_avg_diameter,
            )
        )
    ml = ml20_for(5)
    rows.append(
        (
            "ML-20",
            ml.num_users + ml.num_items,
            ml.num_ratings,
            ml.num_ratings / (ml.num_users + ml.num_items),
            1.0,  # bipartite: one hop between the two sides
            121.0,
            1.0,
        )
    )
    return format_table(
        "Table 2: dataset characteristics (synthetic stand-ins)",
        ["Dataset", "|V|", "|E|", "AvgDeg", "AvgDiam",
         "Paper AvgDeg", "Paper AvgDiam"],
        rows,
    )


def test_table2_datasets(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table2_datasets", table)
