"""Figure 7 — runtime of provenance capturing: Full (Query 2) vs Custom
(Query 3), as multiples of the plain analytic (Giraph baseline).

Paper shape: full capture costs 2.7x-5.6x the baseline; custom capture
stays under 2x of *full's* overhead class (<2x baseline in the paper).
"""

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.bench import format_table, publish, timed, web_graph_for
from repro.core import queries as Q
from repro.engine.engine import PregelEngine
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.graph.stats import max_degree_vertex
from repro.runtime.online import run_online


def measure(analytic_name: str, dataset: str):
    if analytic_name == "sssp":
        graph = web_graph_for(dataset, weighted=True)
        make = lambda: SSSP(source=0)
        source = 0
    else:
        graph = web_graph_for(dataset)
        source = max_degree_vertex(graph, kind="out")
        if analytic_name == "pagerank":
            make = lambda: PageRank(num_supersteps=20)
        else:
            make = lambda: WCC()

    baseline = timed(lambda: PregelEngine(graph).run(make().make_program()))
    results = {}

    def run_full():
        results["full"] = run_online(
            graph, make(), Q.CAPTURE_FULL_QUERY, capture=True
        )

    def run_custom():
        results["custom"] = run_online(
            graph, make(), Q.CAPTURE_FWD_LINEAGE_QUERY,
            params={"source": source}, capture=True,
        )

    full = timed(run_full)
    custom = timed(run_custom)
    return (
        baseline,
        full,
        custom,
        results["full"].store.total_bytes(),
        results["custom"].store.total_bytes(),
    )


def build_rows():
    rows = []
    for analytic in ("pagerank", "sssp", "wcc"):
        for dataset in WEB_DATASET_ORDER:
            base, full, custom, full_bytes, custom_bytes = measure(
                analytic, dataset
            )
            rows.append(
                (
                    analytic,
                    dataset,
                    base,
                    full / base,
                    custom / base,
                    full_bytes / max(1, custom_bytes),
                )
            )
    return rows


def test_fig7_capture_runtime(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 7: capture runtime overhead (x over baseline)",
        ["Analytic", "Dataset", "Baseline s", "Full x", "Custom x",
         "Bytes full/custom"],
        rows,
    )
    publish("fig7_capture_runtime", table)
    # Paper shape: capturing always costs more than the plain analytic; the
    # customized capture stores far less (deterministic) and costs less
    # wall-clock in aggregate (individual cells are single, noisy
    # measurements — SSSP's recursive lineage rule makes its custom-capture
    # CPU comparable to full capture at our scale, see EXPERIMENTS.md).
    full_total = 0.0
    custom_total = 0.0
    for _a, _d, _base, full_x, custom_x, byte_ratio in rows:
        assert full_x > 1.0
        assert byte_ratio > 2.0  # custom stores a fraction of full
        full_total += full_x
        custom_total += custom_x
    assert custom_total < full_total
