"""Ablation: semi-naive vs naive fixpoint iteration (the paper's [4]).

The centralized evaluator runs the recursive backward-lineage query over a
captured SSSP provenance store twice: with delta-driven semi-naive
iteration, and with full re-derivation per round. The recursive trace grows
one layer per round, so naive iteration re-joins the whole trace every
round — the classic quadratic blowup semi-naive avoids.
"""

import time

from repro.bench import captured_store, format_table, publish, web_graph_for
from repro.core import queries as Q
from repro.pql.parser import parse
from repro.pql.seminaive import evaluate_seminaive, store_to_facts

DATASETS = ("IN-04", "UK-02")

#: Cap the trace depth: naive iteration is quadratic in it, and the ablation
#: only needs enough rounds to make the contrast unambiguous.
MAX_TRACE_DEPTH = 12


def measure(dataset: str):
    store = captured_store("sssp", dataset)
    graph = web_graph_for(dataset, weighted=True)
    sigma = min(store.max_superstep, MAX_TRACE_DEPTH)
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    program = parse(Q.BACKWARD_LINEAGE_FULL_QUERY).bind(
        alpha=alpha, sigma=sigma
    )
    facts = store_to_facts(store, graph)

    start = time.perf_counter()
    fast = evaluate_seminaive(program, facts)
    t_semi = time.perf_counter() - start

    start = time.perf_counter()
    slow = evaluate_seminaive(program, facts, naive=True)
    t_naive = time.perf_counter() - start

    assert fast["back_trace"] == slow["back_trace"]
    return t_semi, t_naive, len(fast["back_trace"]), sigma


def build_rows():
    rows = []
    for dataset in DATASETS:
        t_semi, t_naive, trace, depth = measure(dataset)
        rows.append(
            (dataset, depth, trace, t_semi, t_naive, t_naive / t_semi)
        )
    return rows


def test_ablation_seminaive(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Ablation: semi-naive vs naive fixpoint (backward lineage)",
        ["Dataset", "Trace depth", "Trace size", "Semi-naive s",
         "Naive s", "Slowdown x"],
        rows,
    )
    publish("ablation_seminaive", table)
    for row in rows:
        assert row[5] > 1.0  # naive iteration always does more work
