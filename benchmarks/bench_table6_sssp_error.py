"""Table 6 — SSSP approximation error: relative L1 error for eps = 0.1 and
the distance medians of the original (A) and optimized (B) runs.

Paper shape: ~1e-2 error on every dataset with the threshold chosen on one
dataset and transferred to the others; optimized medians slightly larger
(suppressed relaxations leave distances a touch stale).
"""

from repro.analytics import PAPER_EPSILONS
from repro.analytics.error import median, normalized_error
from repro.analytics.sssp import SSSP
from repro.bench import format_table, publish, web_graph_for
from repro.engine.engine import run_program
from repro.graph.datasets import WEB_DATASET_ORDER


def build_rows():
    rows = []
    eps = PAPER_EPSILONS["sssp"]
    for dataset in WEB_DATASET_ORDER:
        graph = web_graph_for(dataset, weighted=True)
        exact_a = SSSP(source=0)
        approx_a = SSSP(source=0, epsilon=eps)
        v_exact = exact_a.result_vector(
            run_program(graph, exact_a.make_program()).values
        )
        v_approx = approx_a.result_vector(
            run_program(graph, approx_a.make_program()).values
        )
        error = normalized_error(v_exact, v_approx, p=1)
        rows.append((dataset, error, median(v_exact), median(v_approx)))
    return rows


def test_table6_sssp_error(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        f"Table 6: SSSP relative error (L1) for eps={PAPER_EPSILONS['sssp']}",
        ["Dataset", "Error", "Median A", "Median B"],
        rows,
    )
    publish("table6_sssp_error", table)
    for _dataset, error, med_a, med_b in rows:
        assert error < 0.15  # paper: ~1e-2
        assert med_b >= med_a - 1e-9  # distances never improve
