"""Figure 10 — runtime improvement of the approximate (apt-suggested)
analytics over the originals.

Paper shape: optimized PageRank (eps = 0.01) is ~1.4x faster; optimized
SSSP (eps = 0.1) is ~1.8x faster, across all datasets with the threshold
transferred from UK-02 unseen.
"""

from repro.analytics import PAPER_EPSILONS
from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.bench import format_table, publish, timed, web_graph_for
from repro.engine.engine import PregelEngine
from repro.graph.datasets import WEB_DATASET_ORDER


def measure(analytic_name: str, dataset: str):
    if analytic_name == "pagerank":
        graph = web_graph_for(dataset)
        exact = PageRank(num_supersteps=20)
        approx = PageRank(num_supersteps=20, epsilon=PAPER_EPSILONS["pagerank"])
    else:
        graph = web_graph_for(dataset, weighted=True)
        exact = SSSP(source=0)
        approx = SSSP(source=0, epsilon=PAPER_EPSILONS["sssp"])
    engine = PregelEngine(graph)
    t_exact = timed(lambda: engine.run(exact.make_program()))
    t_approx = timed(lambda: engine.run(approx.make_program()))
    m_exact = engine.run(exact.make_program()).metrics.total_messages
    m_approx = engine.run(approx.make_program()).metrics.total_messages
    return t_exact, t_approx, m_exact / max(1, m_approx)


def build_rows():
    rows = []
    for analytic in ("pagerank", "sssp"):
        for dataset in WEB_DATASET_ORDER:
            t_exact, t_approx, msg_reduction = measure(analytic, dataset)
            rows.append(
                (
                    analytic,
                    dataset,
                    t_exact,
                    t_approx,
                    t_exact / t_approx,
                    msg_reduction,
                )
            )
    return rows


def test_fig10_optimized_speedup(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 10: original vs optimized analytic runtime",
        ["Analytic", "Dataset", "Original s", "Optimized s",
         "Speedup x", "Msg reduction x"],
        rows,
    )
    publish("fig10_optimized_speedup", table)
    # Paper shape: the optimization reduces messages on every dataset and
    # speeds up the run.
    for row in rows:
        speedup, msg_reduction = row[4], row[5]
        assert msg_reduction > 1.0
        assert speedup > 0.9  # wall time must not regress materially
