"""Table 4 — size of the custom (forward-lineage) provenance graph.

Query 3 captures only the influence set of one vertex — the SSSP source, or
the highest-degree vertex for PageRank/WCC ("vertices that would reveal an
upper bound for the overhead"). The paper finds the custom capture is always
well below the input size while covering >80% of the input vertices.
"""

from repro.bench import format_table, publish, web_graph_for
from repro.core import queries as Q
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.graph.stats import max_degree_vertex
from repro.runtime.online import run_online
from repro.sizemodel import graph_bytes

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC


def capture_custom(analytic_name: str, dataset: str):
    if analytic_name == "sssp":
        graph = web_graph_for(dataset, weighted=True)
        analytic = SSSP(source=0)
        source = 0
    else:
        graph = web_graph_for(dataset)
        source = max_degree_vertex(graph, kind="out")
        analytic = (
            PageRank(num_supersteps=20) if analytic_name == "pagerank" else WCC()
        )
    result = run_online(
        graph, analytic, Q.CAPTURE_FWD_LINEAGE_QUERY,
        params={"source": source}, capture=True,
    )
    return graph, result.store


def build_rows():
    rows = []
    for dataset in WEB_DATASET_ORDER:
        input_bytes = graph_bytes(web_graph_for(dataset))
        cells = [dataset, input_bytes]
        pr_coverage = 0.0
        for analytic in ("pagerank", "sssp", "wcc"):
            graph, store = capture_custom(analytic, dataset)
            cells.append(store.total_bytes())
            if analytic == "pagerank":
                pr_coverage = (
                    len(store.vertices("fwd_lineage")) / graph.num_vertices
                )
        cells.append(pr_coverage)
        rows.append(tuple(cells))
    return rows


def test_table4_custom_capture_size(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Table 4: custom provenance graph size (Query 3 capture)",
        ["Dataset", "Input B", "PR B", "SSSP B", "WCC B", "PR coverage"],
        rows,
    )
    publish("table4_custom_capture_size", table)
    for row in rows:
        input_bytes = row[1]
        # Custom capture is far smaller than the full capture; the paper
        # reports <40% of the *input* — our byte model puts lineage tuples
        # in the same ballpark as the input graph rows.
        assert row[4] < input_bytes * 3
        # PageRank diffuses every superstep, so the influence set covers
        # most of the graph (the paper reports >80% of input vertices).
        assert row[5] > 0.5
