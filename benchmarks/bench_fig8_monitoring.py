"""Figure 8 — execution-monitoring queries (Queries 4, 5, 6) under the
three evaluation modes, as multiples of the baseline analytic.

Paper shape: Online ~1.1-1.3x, Layered ~3-3.7x, Naive ~4-4.7x, with Naive
only evaluated on the two smallest datasets (it doesn't scale further).
Offline numbers exclude capture time, exactly as in the paper.
"""

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.bench import (
    NAIVE_DATASETS,
    capture_seconds,
    captured_store,
    format_table,
    measure_query_modes,
    publish,
    web_graph_for,
)
from repro.core import queries as Q
from repro.graph.datasets import WEB_DATASET_ORDER

CASES = (
    ("pagerank", "query4", Q.PAGERANK_CHECK_QUERY),
    ("sssp", "query5", Q.SSSP_WCC_UPDATE_CHECK_QUERY),
    ("sssp", "query6", Q.SSSP_WCC_STABILITY_QUERY),
    ("wcc", "query5", Q.SSSP_WCC_UPDATE_CHECK_QUERY),
    ("wcc", "query6", Q.SSSP_WCC_STABILITY_QUERY),
)


def make_analytic(name):
    if name == "pagerank":
        return PageRank(num_supersteps=20)
    if name == "sssp":
        return SSSP(source=0)
    return WCC()


def build_rows():
    rows = []
    for analytic_name, query_name, query in CASES:
        for dataset in WEB_DATASET_ORDER:
            graph = web_graph_for(dataset, weighted=analytic_name == "sssp")
            timings = measure_query_modes(
                graph,
                make_analytic(analytic_name),
                query,
                store=captured_store(analytic_name, dataset),
                with_naive=dataset in NAIVE_DATASETS,
            )
            cap_x = capture_seconds(analytic_name, dataset) / timings.baseline
            rows.append(
                (
                    analytic_name,
                    query_name,
                    dataset,
                    timings.baseline,
                    timings.over(timings.online),
                    timings.over(timings.layered),
                    timings.over(timings.naive) or "-",
                    cap_x + timings.over(timings.layered),
                )
            )
    return rows


def test_fig8_monitoring_queries(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 8: monitoring query runtime (x over baseline)",
        ["Analytic", "Query", "Dataset", "Baseline s",
         "Online x", "Layered x", "Naive x", "Capture+Layered x"],
        rows,
    )
    publish("fig8_monitoring", table)
    # Paper shape: online short-circuits capture-then-query — it always
    # beats the end-to-end offline path (capture + layered). The pure
    # query-only comparison (Layered column) excludes capture, as in the
    # paper; see EXPERIMENTS.md for where our in-memory load differs.
    for row in rows:
        online_x, end_to_end_x = row[4], row[7]
        assert online_x < end_to_end_x
