"""Figure 12 — backward lineage: layered querying over the full provenance
graph (Query 2 capture + Query 10) vs over the custom provenance graph
(Query 11 capture + Query 12), as multiples of the analytic baseline.

Paper shape: Full takes 2.6x-3.4x the baseline, Custom only ~0.5x, and
both return identical lineage.
"""

from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.bench import (
    captured_store,
    format_table,
    publish,
    timed,
    web_graph_for,
)
from repro.core import queries as Q
from repro.engine.engine import PregelEngine
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.provenance.spill import SpillManager
from repro.runtime.offline import run_layered_from_spill
from repro.runtime.online import run_online


def make_analytic(name):
    if name == "pagerank":
        return PageRank(num_supersteps=20)
    if name == "sssp":
        return SSSP(source=0)
    return WCC()


def trace_target(store):
    """A vertex that computed in the last superstep (the paper's choice)."""
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return alpha, sigma


def measure(analytic_name: str, dataset: str):
    graph = web_graph_for(dataset, weighted=analytic_name == "sssp")
    analytic = make_analytic(analytic_name)
    baseline = timed(lambda: PregelEngine(graph).run(analytic.make_program()))

    full_store = captured_store(analytic_name, dataset)
    # WCC broadcasts along reverse edges too, so its custom capture needs
    # the symmetric edge relation (see queries.py).
    capture_query = (
        Q.CAPTURE_BACKWARD_CUSTOM_UNDIRECTED_QUERY
        if analytic_name == "wcc"
        else Q.CAPTURE_BACKWARD_CUSTOM_QUERY
    )
    custom_store = run_online(
        graph, make_analytic(analytic_name), capture_query, capture=True,
    ).store
    alpha, sigma = trace_target(full_store)
    params = {"alpha": alpha, "sigma": sigma}

    results = {}
    with SpillManager(full_store) as spill:
        spill.seal_all()

        def run_full(spill=spill):
            results["full"] = run_layered_from_spill(
                spill, Q.BACKWARD_LINEAGE_FULL_QUERY, graph, params
            )

        t_full = timed(run_full)
    with SpillManager(custom_store) as spill:
        spill.seal_all()

        def run_custom(spill=spill):
            results["custom"] = run_layered_from_spill(
                spill, Q.BACKWARD_LINEAGE_CUSTOM_QUERY, graph, params
            )

        t_custom = timed(run_custom)
    same = (
        results["full"].rows("back_trace")
        == results["custom"].rows("back_trace")
    )
    return baseline, t_full, t_custom, same


def build_rows():
    rows = []
    for analytic in ("pagerank", "sssp", "wcc"):
        for dataset in WEB_DATASET_ORDER:
            baseline, t_full, t_custom, same = measure(analytic, dataset)
            rows.append(
                (
                    analytic,
                    dataset,
                    baseline,
                    t_full / baseline,
                    t_custom / baseline,
                    "yes" if same else "NO",
                )
            )
    return rows


def test_fig12_backward_lineage(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 12: layered backward lineage, Full (Q10) vs Custom (Q12)",
        ["Analytic", "Dataset", "Baseline s", "Full x", "Custom x", "Same"],
        rows,
    )
    publish("fig12_backward", table)
    totals = {}
    for analytic, _d, _b, full_x, custom_x, same in rows:
        assert same == "yes"  # Section 6.3: identical lineage
        agg = totals.setdefault(analytic, [0.0, 0.0])
        agg[0] += full_x
        agg[1] += custom_x
    # Custom queries are faster; individual cells are single measurements,
    # so compare per analytic.
    for analytic, (full_total, custom_total) in totals.items():
        assert custom_total < full_total, analytic
