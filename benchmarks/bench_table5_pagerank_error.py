"""Table 5 — PageRank approximation error: relative L2 error for
eps = 0.01 and the rank medians of the original (A) and optimized (B) runs.

Paper shape: errors between 1e-5 and 1e-3, medians ~0.15-0.2 (the Giraph
unnormalized formulation); the same threshold transfers across datasets.
"""

from repro.analytics import PAPER_EPSILONS
from repro.analytics.error import median, normalized_error
from repro.analytics.pagerank import PageRank
from repro.bench import PAGERANK_SUPERSTEPS, format_table, publish, web_graph_for
from repro.engine.engine import run_program
from repro.graph.datasets import WEB_DATASET_ORDER

def build_rows():
    rows = []
    eps = PAPER_EPSILONS["pagerank"]
    for dataset in WEB_DATASET_ORDER:
        graph = web_graph_for(dataset)
        exact_a = PageRank(num_supersteps=PAGERANK_SUPERSTEPS)
        approx_a = PageRank(num_supersteps=PAGERANK_SUPERSTEPS, epsilon=eps)
        v_exact = exact_a.result_vector(
            run_program(graph, exact_a.make_program()).values
        )
        v_approx = approx_a.result_vector(
            run_program(graph, approx_a.make_program()).values
        )
        error = normalized_error(v_exact, v_approx, p=2)
        rows.append((dataset, error, median(v_exact), median(v_approx)))
    return rows


def test_table5_pagerank_error(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        f"Table 5: PageRank relative error (L2) for eps={PAPER_EPSILONS['pagerank']}",
        ["Dataset", "Error", "Median A", "Median B"],
        rows,
    )
    publish("table5_pagerank_error", table)
    for _dataset, error, med_a, med_b in rows:
        assert error < 0.05  # paper: 1e-5 .. 1e-3
        assert abs(med_a - med_b) < 0.1
