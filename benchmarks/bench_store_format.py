"""Sealed-store format benchmark: columnar (ARSC) vs framed pickle (ARSL).

Seals the same full SSSP capture in both formats and measures the two
costs the columnar layout exists to cut, writing
``benchmarks/results/BENCH_store.json``:

* **warm reopen** — time from a sealed directory on disk to a store that
  can answer queries. Pickle must rebuild the full in-memory store
  (deserialize every slab); columnar opens the mmap'd sealed view and
  decodes only slab footers. The gate is a >= 5x speedup.
* **partial decode** — peak memory (tracemalloc) of touching a single
  column of the capture's dominant relation across every layer vs
  materializing full layers. The gate is <= 50% — in practice the ratio
  is far lower because untouched column segments stay compressed bytes
  in the mmap.

Both stores must answer Query 10 (backward lineage) byte-identically —
the report carries the digest comparison and ``--check`` fails on any
mismatch, so the perf gates can never pass on diverging answers.

Run standalone (CI smoke / perf tracking)::

    PYTHONPATH=src python benchmarks/bench_store_format.py [--smoke] [--check]

``--smoke`` shrinks the workload so the run finishes in seconds;
``--check`` enforces the reopen and memory gates. Scale with
``REPRO_SCALE``.
"""

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc

from repro.bench import format_table, publish, results_dir
from repro.bench.workloads import captured_store, repeats
from repro.core import queries as Q
from repro.obs import ledger as obsledger
from repro.provenance.spill import SpillManager, open_store_view, rebuild_store
from repro.runtime.offline import run_layered_from_spill

DATASET = "IN-04"

#: ``--check`` floor: warm reopen of a columnar store vs a pickle rebuild.
REOPEN_SPEEDUP_FLOOR = 5.0

#: ``--check`` ceiling: single-column peak memory over full-layer peak.
SINGLE_COLUMN_MEMORY_CEILING = 0.5


def _seal(store, directory, fmt):
    spill = SpillManager(
        store, directory=directory, format=fmt,
        compression="zlib", async_writes=False,
    )
    spill.seal_all()
    spill.write_manifest()
    spill.release_slabs()
    return spill


def _lineage_params(store):
    sigma = store.max_superstep
    alpha = next(x for x, t in store.rows("superstep") if t == sigma)
    return {"alpha": alpha, "sigma": sigma}


def _time_reopen_columnar(directory, rounds):
    """Directory -> query-ready sealed view (footer decodes only).

    The timer covers the whole warm path — slab validation at
    :meth:`SpillManager.open`, then the mmap'd view — mirroring what a
    long-lived server pays to (re)admit a sealed run."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        view = open_store_view(SpillManager.open(directory))
        assert view is not None
        view.counts()
        best = min(best, time.perf_counter() - start)
        view.close()
    return best


def _time_reopen_pickle(directory, rounds):
    """Directory -> query-ready in-memory store (full rebuild)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        store = rebuild_store(SpillManager.open(directory))
        store.counts()
        best = min(best, time.perf_counter() - start)
    return best


def _dominant_relation(spill):
    """The relation with the most sealed payload across layer slabs."""
    totals = {}
    for superstep in spill.sealed_layers():
        slab = spill.open_columnar_slab(superstep)
        for relation in slab.relations():
            totals[relation] = (
                totals.get(relation, 0) + slab.raw_bytes(relation)
            )
    spill.release_slabs()
    return max(totals, key=totals.get)


def _measure_single_column(directory, relation):
    """Peak tracemalloc bytes decoding one column of ``relation`` per layer."""
    spill = SpillManager.open(directory)
    tracemalloc.start()
    decoded = 0
    for superstep in spill.sealed_layers():
        slab = spill.open_columnar_slab(superstep)
        if relation in slab.relations():
            slab.column(relation, 0)
        decoded += slab.decoded_bytes
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    spill.release_slabs()
    return peak, decoded


def _measure_full_layers(directory):
    """Peak tracemalloc bytes materializing every layer in full."""
    spill = SpillManager.open(directory)
    tracemalloc.start()
    store = rebuild_store(spill)
    rows = store.num_rows
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, rows


def build_report():
    store = captured_store("sssp", DATASET)
    params = _lineage_params(store)
    rounds = repeats(5)
    report = {
        "dataset": DATASET,
        "rows": store.num_rows,
        "layers": store.num_layers,
        "params": params,
    }
    with tempfile.TemporaryDirectory() as base:
        dirs = {}
        for fmt in ("columnar", "pickle"):
            dirs[fmt] = os.path.join(base, fmt)
            _seal(store, dirs[fmt], fmt)
        report["on_disk_bytes"] = {
            fmt: sum(
                os.path.getsize(os.path.join(directory, name))
                for name in os.listdir(directory)
            )
            for fmt, directory in dirs.items()
        }

        digests = {}
        decoded = {}
        for fmt, directory in dirs.items():
            result = run_layered_from_spill(
                SpillManager.open(directory), Q.NAMED_QUERIES["query10"],
                None, params,
            )
            digests[fmt] = obsledger.digest_query_result(result)
            decoded[fmt] = result.stats.get("decoded_bytes")
        report["query10_digests"] = digests
        report["digest_match"] = len(set(digests.values())) == 1
        report["query10_decoded_bytes"] = decoded["columnar"]

        columnar_reopen = _time_reopen_columnar(dirs["columnar"], rounds)
        pickle_reopen = _time_reopen_pickle(dirs["pickle"], rounds)
        report["reopen"] = {
            "columnar_seconds": columnar_reopen,
            "pickle_seconds": pickle_reopen,
            "speedup": pickle_reopen / columnar_reopen,
        }

        relation = _dominant_relation(SpillManager.open(dirs["columnar"]))
        column_peak, column_decoded = _measure_single_column(
            dirs["columnar"], relation
        )
        full_peak, _ = _measure_full_layers(dirs["pickle"])
        report["memory"] = {
            "probe_relation": relation,
            "single_column_peak_bytes": column_peak,
            "single_column_decoded_bytes": column_decoded,
            "full_layer_peak_bytes": full_peak,
            "ratio": column_peak / full_peak,
        }
    return report


def publish_table(report):
    reopen = report["reopen"]
    memory = report["memory"]
    rows = [
        [
            "warm reopen (ms)",
            f"{reopen['columnar_seconds'] * 1000:.2f}",
            f"{reopen['pickle_seconds'] * 1000:.2f}",
            f"{reopen['speedup']:.1f}x (floor {REOPEN_SPEEDUP_FLOOR:.0f}x)",
        ],
        [
            f"peak bytes ({memory['probe_relation']} col 0 vs full layers)",
            f"{memory['single_column_peak_bytes']}",
            f"{memory['full_layer_peak_bytes']}",
            f"{memory['ratio']:.2%} (ceiling "
            f"{SINGLE_COLUMN_MEMORY_CEILING:.0%})",
        ],
        [
            "query10 digest",
            report["query10_digests"]["columnar"][:12],
            report["query10_digests"]["pickle"][:12],
            "identical" if report["digest_match"] else "DIVERGED",
        ],
    ]
    publish("store_format", format_table(
        "Sealed-store format: columnar (ARSC) vs framed pickle (ARSL)",
        ["metric", "columnar", "pickle", "gate"],
        rows,
    ))


def check_report(report, check=False):
    assert report["digest_match"], (
        f"query10 diverged across formats: {report['query10_digests']}"
    )
    if not check:
        return
    speedup = report["reopen"]["speedup"]
    assert speedup >= REOPEN_SPEEDUP_FLOOR, (
        f"warm reopen speedup {speedup:.2f}x below the "
        f"{REOPEN_SPEEDUP_FLOOR}x floor"
    )
    ratio = report["memory"]["ratio"]
    assert ratio <= SINGLE_COLUMN_MEMORY_CEILING, (
        f"single-column peak is {ratio:.2%} of the full-layer peak "
        f"(ceiling {SINGLE_COLUMN_MEMORY_CEILING:.0%})"
    )


def write_json(report):
    path = os.path.join(results_dir(), "BENCH_store.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload (CI): shrink the graph")
    parser.add_argument("--check", action="store_true",
                        help="fail unless reopen and memory gates clear")
    args = parser.parse_args(argv)
    if args.smoke and "REPRO_SCALE" not in os.environ:
        # Half scale, not the usual quarter: the reopen ratio shrinks with
        # the workload (fixed per-slab costs dominate both paths on tiny
        # stores), and the 5x gate needs headroom against CI noise.
        os.environ["REPRO_SCALE"] = "0.5"
    report = build_report()
    report["smoke"] = args.smoke
    path = write_json(report)
    publish_table(report)
    check_report(report, check=args.check)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
