"""Ablations of the online-evaluation design choices (DESIGN.md §3).

Three switches, each isolated on the apt query over SSSP:

* **delta piggybacking** — per-target watermarks ship each derived tuple to
  a neighbor once; the ablation re-ships full tables on every message;
* **window pruning** — bounded-history relations are pruned per superstep;
  the ablation retains the full transient provenance;
* **superstep index** — time-anchored scans read one bucket instead of the
  whole partition; the ablation scans linearly.

Each row reports runtime and the memory/traffic metric the switch targets.
"""

import time

from repro.analytics.sssp import SSSP
from repro.bench import format_table, publish, web_graph_for
from repro.core import queries as Q
from repro.engine.config import EngineConfig
from repro.engine.engine import PregelEngine
from repro.pql.analysis import compile_query
from repro.pql.parser import parse
from repro.pql.udf import FunctionRegistry
from repro.runtime.online import OnlineQueryProgram

DATASET = "UK-02"


def run_variant(**switches):
    graph = web_graph_for(DATASET, weighted=True)
    analytic = SSSP(source=0)
    functions = FunctionRegistry(Q.apt_udfs(analytic))
    compiled = compile_query(
        parse(Q.APT_QUERY).bind(eps=0.1), functions=functions
    )
    wrapper = OnlineQueryProgram(
        analytic.make_program(), compiled, functions, graph,
        value_projector=analytic.provenance_value, **switches,
    )
    wrapper.run_setup()
    engine = PregelEngine(graph, config=EngineConfig(use_combiner=False))
    start = time.perf_counter()
    engine.run(wrapper)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "shipped": wrapper.shipped_tuples,
        "transient": wrapper.db.local.num_rows(),
        "safe": wrapper.db.derived.num_rows("safe"),
        "unsafe": wrapper.db.derived.num_rows("unsafe"),
    }


def build_rows():
    default = run_variant()
    no_delta = run_variant(ship_full_tables=True)
    no_prune = run_variant(prune_history=False)
    no_index = run_variant(timed_index=False)
    rows = [
        ("default", default["seconds"], default["shipped"],
         default["transient"]),
        ("full-table shipping", no_delta["seconds"], no_delta["shipped"],
         no_delta["transient"]),
        ("no window pruning", no_prune["seconds"], no_prune["shipped"],
         no_prune["transient"]),
        ("no superstep index", no_index["seconds"], no_index["shipped"],
         no_index["transient"]),
    ]
    # every variant computes the same query result
    for variant in (no_delta, no_prune, no_index):
        assert variant["safe"] == default["safe"]
        assert variant["unsafe"] == default["unsafe"]
    return rows, default, no_delta, no_prune, no_index


def test_ablation_online(benchmark):
    rows, default, no_delta, no_prune, no_index = benchmark.pedantic(
        build_rows, rounds=1, iterations=1
    )
    table = format_table(
        f"Ablation: online apt query on {DATASET} (SSSP, eps=0.1)",
        ["Variant", "Seconds", "Shipped tuples", "Transient rows"],
        rows,
    )
    publish("ablation_online", table)
    # delta shipping must move fewer tuples than full-table shipping
    assert default["shipped"] < no_delta["shipped"]
    # pruning must keep the transient store smaller
    assert default["transient"] < no_prune["transient"]
    # the superstep index must not change results (timing asserted loosely:
    # the indexed variant never does *more* work)
    assert default["safe"] == no_index["safe"]
