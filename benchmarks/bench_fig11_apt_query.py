"""Figure 11 — runtime of the motivating apt query (Query 1) across the
three evaluation modes, plus the Section 6.2.2 narrative numbers: the
safe/unsafe verdicts per analytic.

Paper shape:
* PageRank eps=0.01: ~60% of vertices safely skippable, no unsafe vertices;
* SSSP eps=0.1: most vertices safely skippable, no unsafe vertices;
* WCC eps=1: every no-execute vertex is unsafe (do NOT approximate);
* Online < Layered < Naive runtimes throughout.
"""

from repro.analytics import PAPER_EPSILONS
from repro.analytics.als import ALS
from repro.analytics.pagerank import PageRank
from repro.analytics.sssp import SSSP
from repro.analytics.wcc import WCC
from repro.bench import (
    NAIVE_DATASETS,
    capture_seconds,
    captured_store,
    format_table,
    measure_query_modes,
    ml20_for,
    publish,
    timed,
    web_graph_for,
)
from repro.core import queries as Q
from repro.engine.engine import PregelEngine
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.runtime.online import run_online


def make_analytic(name):
    if name == "pagerank":
        return PageRank(num_supersteps=20)
    if name == "sssp":
        return SSSP(source=0)
    return WCC()


def build_rows():
    rows = []
    verdicts = []
    for analytic_name in ("pagerank", "sssp", "wcc"):
        eps = PAPER_EPSILONS[analytic_name]
        for dataset in WEB_DATASET_ORDER:
            graph = web_graph_for(dataset, weighted=analytic_name == "sssp")
            analytic = make_analytic(analytic_name)
            timings = measure_query_modes(
                graph,
                analytic,
                Q.APT_QUERY,
                params={"eps": eps},
                store=captured_store(analytic_name, dataset),
                with_naive=dataset in NAIVE_DATASETS,
            )
            cap_x = capture_seconds(analytic_name, dataset) / timings.baseline
            rows.append(
                (
                    analytic_name,
                    dataset,
                    timings.baseline,
                    timings.over(timings.online),
                    timings.over(timings.layered),
                    timings.over(timings.naive) or "-",
                    cap_x + timings.over(timings.layered),
                )
            )
            online = run_online(
                graph, analytic, Q.APT_QUERY, params={"eps": eps},
                udfs=Q.apt_udfs(analytic),
            )
            verdicts.append(
                (
                    analytic_name,
                    dataset,
                    online.query.count("no_execute"),
                    online.query.count("safe"),
                    online.query.count("unsafe"),
                )
            )
    return rows, verdicts


def als_row():
    bipartite = ml20_for(5)
    graph = bipartite.to_digraph()

    def make():
        return ALS(bipartite, num_features=5, max_rounds=3)

    baseline = timed(lambda: PregelEngine(graph).run(make().make_program()))
    online = timed(
        lambda: run_online(
            graph, make(), Q.APT_QUERY, params={"eps": 0.01},
            udfs=Q.apt_udfs(make()),
        )
    )
    return ("als", "ML-20^5", baseline, online / baseline, "-", "-", "-")


def test_fig11_apt_query(benchmark):
    (rows, verdicts) = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    rows = list(rows) + [als_row()]
    table = format_table(
        "Figure 11: apt query runtime (x over baseline)",
        ["Analytic", "Dataset", "Baseline s", "Online x",
         "Layered x", "Naive x", "Capture+Layered x"],
        rows,
    )
    publish("fig11_apt_runtime", table)
    for row in rows:
        if row[6] != "-":
            assert row[3] < row[6]  # online beats end-to-end offline

    verdict_table = format_table(
        "Section 6.2.2: apt query verdicts (vertex-superstep counts)",
        ["Analytic", "Dataset", "no_execute", "safe", "unsafe"],
        verdicts,
    )
    publish("fig11_apt_verdicts", verdict_table)

    for analytic_name, _ds, no_exec, safe, unsafe in verdicts:
        assert safe + unsafe == no_exec
        if analytic_name == "wcc":
            # the paper's headline negative result: WCC is never safe
            assert safe == 0
        else:
            assert safe > unsafe  # PR/SSSP: overwhelmingly safe to skip
