"""Serve load benchmark: the query server under concurrent clients.

Seals two captures (SSSP and PageRank over the bench web graph), starts
one :class:`~repro.serve.app.ReproServer` holding both open, and drives a
mixed workload — full lineage queries, paginated queries, and lineage
endpoint hits, alternating across both stores — at 1, 8, and 32
concurrent clients. Writes ``benchmarks/results/BENCH_serve.json`` with
requests/second and p50/p99 latency per concurrency level, plus the
warm-vs-cold comparison the serve design is built around:

* **warm** — the served path: catalog-held store, prepared-plan cache
  hit, lazily-built row indexes already in place;
* **cold** — what every request would cost without the catalog: open the
  sealed store from disk, rebuild it, compile the query, evaluate.

Run standalone (CI smoke / perf tracking)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py [--smoke] [--check]

``--smoke`` shrinks the workload so the run finishes in seconds;
``--check`` fails unless results stay byte-identical across clients and
the warm path clears its speedup floor over cold per-request opens.
Scale with ``REPRO_SCALE``. Also runs under ``pytest benchmarks/
--benchmark-only``.
"""

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from statistics import median

from repro import Ariadne, PageRank, SSSP
from repro.bench import format_table, publish, results_dir, web_graph_for
from repro.bench.workloads import PAGERANK_SUPERSTEPS, bench_scale
from repro.provenance.spill import SpillManager, rebuild_store
from repro.runtime.offline import run_layered
from repro.serve.catalog import RunCatalog
from repro.serve.testing import ServerThread

DATASET = "IN-04"

CONCURRENCY_LEVELS = (1, 8, 32)

#: --check floor: a warm served query must beat a cold per-request store
#: open by at least this factor (ISSUE 8 acceptance: >= 2x).
WARM_SPEEDUP_FLOOR = 2.0

#: Requests per client per concurrency level (scaled down by --smoke).
REQUESTS_PER_CLIENT = 12
SMOKE_REQUESTS_PER_CLIENT = 4

#: Cold/warm single-query timing samples.
COMPARE_SAMPLES = 5
SMOKE_COMPARE_SAMPLES = 3


def percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def lineage_params(store):
    sigma = store.max_superstep
    alpha = min(x for x, i in store.rows("superstep") if i == sigma)
    return {"alpha": alpha, "sigma": sigma}


def seal_captures(directory):
    """Capture and seal both workload stores; returns their paths."""
    graph = web_graph_for(DATASET, weighted=True)
    stores = {}
    for name, analytic in (
        ("sssp", SSSP(source=0)),
        ("pagerank", PageRank(num_supersteps=PAGERANK_SUPERSTEPS)),
    ):
        capture = Ariadne(graph, analytic).capture()
        target = os.path.join(directory, name)
        spill = SpillManager(capture.store, directory=target,
                             async_writes=False)
        spill.seal_all()
        stores[name] = target
    return stores


def build_workload(server, catalog, stores):
    """The mixed request list one client cycles through: (label, fn)."""
    plans = []
    for path in stores.values():
        entry = catalog._by_path[os.path.abspath(path)]  # noqa: SLF001
        params = lineage_params(entry.store)
        run_id = entry.run_id

        def full(run_id=run_id, params=params):
            return server.request(
                "POST", f"/runs/{run_id}/query",
                body={"query": "query10", "params": params})

        def paged(run_id=run_id, params=params):
            return server.request(
                "POST", f"/runs/{run_id}/query",
                body={"query": "query10", "params": params, "limit": 50})

        def lineage(run_id=run_id, params=params):
            return server.request(
                "GET", f"/runs/{run_id}/lineage/{params['alpha']}"
                       f"?sigma={params['sigma']}")

        plans.extend([("full", full), ("paged", paged),
                      ("lineage", lineage)])
    return plans


def run_level(workload, clients, requests_per_client):
    """Drive ``clients`` threads through the mixed workload; returns
    latency samples, wall time, throttle count, and any cross-client
    result divergence.  Budget 408s under saturation are the server
    shedding load by design — counted, not treated as failures."""
    latencies = []
    digests = {}
    errors = []
    throttled = [0]
    lock = threading.Lock()

    def client(worker):
        for i in range(requests_per_client):
            label, fn = workload[(worker + i) % len(workload)]
            started = time.perf_counter()
            try:
                status, doc = fn()
            except Exception as exc:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(f"{label}: {exc!r}")
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if (status == 408 and isinstance(doc, dict)
                        and doc.get("error") == "budget_exceeded"):
                    throttled[0] += 1
                    continue
                if status != 200:
                    errors.append(f"{label}: HTTP {status} {doc}")
                    continue
                key = (label, doc.get("run"))
                body = json.dumps(doc.get("result"), sort_keys=True)
                if key in digests and digests[key] != body:
                    errors.append(f"{label}: divergent result for {key}")
                digests.setdefault(key, body)

    threads = [threading.Thread(target=client, args=(w,))
               for w in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return latencies, wall, throttled[0], errors


#: The interactive point-lookup used for the warm/cold comparison: a
#: single-relation scan whose evaluation is cheap, so the measurement
#: isolates what the catalog amortizes (store open + rebuild + plan
#: compilation) rather than evaluation time, which both paths pay
#: identically.
COMPARE_QUERY = "updated(X, I) :- superstep(X, I)."


def measure_warm_vs_cold(server, catalog, stores, samples):
    """Per-request cost: served warm path vs a cold store-open each time."""
    path = stores["sssp"]
    entry = catalog._by_path[os.path.abspath(path)]  # noqa: SLF001
    run_id = entry.run_id
    body = {"query": COMPARE_QUERY}

    # Prime the plan cache and row indexes, then sample the warm path.
    server.request("POST", f"/runs/{run_id}/query", body=body)
    warm = []
    for _ in range(samples):
        started = time.perf_counter()
        status, doc = server.request("POST", f"/runs/{run_id}/query",
                                     body=body)
        warm.append(time.perf_counter() - started)
        assert status == 200 and doc["plan_cache"] == "hit", doc

    cold = []
    for _ in range(samples):
        started = time.perf_counter()
        spill = SpillManager.open(path)
        store = rebuild_store(spill)
        run_layered(store, COMPARE_QUERY)
        cold.append(time.perf_counter() - started)

    return {
        "warm_seconds": median(warm),
        "cold_seconds": median(cold),
        "speedup": median(cold) / median(warm) if median(warm) else 0.0,
        "samples": samples,
    }


def build_report(smoke=False):
    requests_per_client = (SMOKE_REQUESTS_PER_CLIENT if smoke
                           else REQUESTS_PER_CLIENT)
    samples = SMOKE_COMPARE_SAMPLES if smoke else COMPARE_SAMPLES
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        stores = seal_captures(tmp)
        catalog = RunCatalog()
        for path in stores.values():
            catalog.register_path(path)
        with ServerThread(catalog=catalog, record_queries=False,
                          eval_workers=8) as server:
            workload = build_workload(server, catalog, stores)
            levels = {}
            errors = []
            for clients in CONCURRENCY_LEVELS:
                latencies, wall, throttled, level_errors = run_level(
                    workload, clients, requests_per_client)
                errors.extend(level_errors)
                count = len(latencies)
                levels[str(clients)] = {
                    "clients": clients,
                    "requests": count,
                    "throttled": throttled,
                    "wall_seconds": wall,
                    "rps": count / wall if wall else 0.0,
                    "p50_seconds": percentile(latencies, 0.50),
                    "p99_seconds": percentile(latencies, 0.99),
                }
            comparison = measure_warm_vs_cold(
                server, catalog, stores, samples)
    return {
        "dataset": DATASET,
        "scale": bench_scale(),
        "workload": "mixed full/paged/lineage over sssp + pagerank",
        "requests_per_client": requests_per_client,
        "levels": levels,
        "warm_vs_cold": comparison,
        "errors": errors,
    }


def write_json(report):
    path = os.path.join(results_dir(), "BENCH_serve.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    return path


def publish_table(report):
    rows = [
        (
            level["clients"],
            level["requests"],
            level["throttled"],
            f"{level['rps']:,.1f}",
            f"{level['p50_seconds'] * 1000:.2f}",
            f"{level['p99_seconds'] * 1000:.2f}",
        )
        for level in (report["levels"][str(c)] for c in CONCURRENCY_LEVELS)
    ]
    table = format_table(
        f"Serve load: mixed workload over two open stores "
        f"({report['dataset']}, scale {report['scale']})",
        ["Clients", "Requests", "408s", "Req/s", "p50 ms", "p99 ms"],
        rows,
    )
    publish("serve_load", table)
    print(table)
    comparison = report["warm_vs_cold"]
    print(
        f"warm served query {comparison['warm_seconds'] * 1000:.2f} ms vs "
        f"cold per-request open {comparison['cold_seconds'] * 1000:.2f} ms "
        f"= {comparison['speedup']:.1f}x (floor {WARM_SPEEDUP_FLOOR:.0f}x)"
    )


def check_report(report, check_speedup=False):
    assert not report["errors"], (
        "load run saw request failures or divergent results: "
        + "; ".join(report["errors"][:5])
    )
    for level in report["levels"].values():
        assert level["requests"] > 0 and level["rps"] > 0
        # Saturation may throttle, but never to the point of serving
        # nothing: every level must complete some 200s.
        assert level["requests"] > level["throttled"], (
            f"level {level['clients']}: all requests budget-throttled"
        )
    if check_speedup:
        speedup = report["warm_vs_cold"]["speedup"]
        assert speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm served path below the {WARM_SPEEDUP_FLOOR:.1f}x floor "
            f"over cold per-request opens: {speedup:.2f}x"
        )


def test_serve_load(benchmark):
    report = benchmark.pedantic(build_report, kwargs={"smoke": True},
                                rounds=1, iterations=1)
    write_json(report)
    publish_table(report)
    check_report(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload (CI): shrink graph + requests")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the warm path clears its floor")
    args = parser.parse_args(argv)
    if args.smoke and "REPRO_SCALE" not in os.environ:
        os.environ["REPRO_SCALE"] = "0.25"
    report = build_report(smoke=args.smoke)
    report["smoke"] = args.smoke
    path = write_json(report)
    publish_table(report)
    check_report(report, check_speedup=args.check)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
