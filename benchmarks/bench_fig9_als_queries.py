"""Figure 9 — ALS monitoring queries (Queries 7 and 8) evaluated online on
ML-20 with 5, 10 and 15 latent features.

Paper shape: Query 7 adds ~5% and Query 8 ~20% over the ALS baseline (the
pure-Python reproduction pays proportionally more per tuple, but the
feature-count scaling and the small-relative-to-capture cost reproduce).
"""

from repro.analytics.als import ALS
from repro.bench import format_table, ml20_for, publish, timed
from repro.core import queries as Q
from repro.engine.engine import PregelEngine
from repro.runtime.online import run_online

FEATURES = (5, 10, 15)
MAX_ROUNDS = 3
#: Query 8's error-increase threshold. The paper uses 0.5 on the real
#: MovieLens ratings and finds ~30% of vertices regressing; our synthetic
#: ratings are much cleaner (low-rank + small noise), so the comparable
#: operating point is a tighter threshold.
Q8_EPS = 0.0


def measure(num_features: int):
    bipartite = ml20_for(num_features)
    graph = bipartite.to_digraph()

    def make():
        return ALS(bipartite, num_features=num_features, max_rounds=MAX_ROUNDS)

    baseline = timed(lambda: PregelEngine(graph).run(make().make_program()))
    q7 = timed(lambda: run_online(graph, make(), Q.ALS_ERROR_RANGE_QUERY))
    q8_result = {}

    def run_q8():
        q8_result["r"] = run_online(
            graph, make(), Q.ALS_ERROR_TREND_QUERY, params={"eps": Q8_EPS}
        )

    q8 = timed(run_q8)
    result = q8_result["r"]
    fraction = len(result.query.vertices("problem")) / graph.num_vertices
    return baseline, q7, q8, fraction


def build_rows():
    rows = []
    for k in FEATURES:
        baseline, q7, q8, fraction = measure(k)
        rows.append(
            (f"ML-20^{k}", baseline, q7 / baseline, q8 / baseline, fraction)
        )
    return rows


def test_fig9_als_queries(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Figure 9: ALS query runtime (x over baseline)",
        ["Dataset", "Baseline s", "Query7 x", "Query8 x", "Q8 frac"],
        rows,
    )
    publish("fig9_als_queries", table)
    for row in rows:
        _d, _b, q7x, q8x, fraction = row
        # both queries are lockstep additions, not multiples of a capture run
        assert q7x < 25.0
        assert q8x < 40.0
        # the paper finds ~30% of vertices with increasing error
        assert fraction > 0.05
