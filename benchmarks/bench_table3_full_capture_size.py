"""Table 3 — size of the full provenance graph vs the input graph.

The paper reports the full capture (Query 2) at ~10x the input for PageRank
and SSSP and ~5x for WCC (WCC converges quickly, so fewer layers carry
facts). The reproduction reports serialized sizes under one byte model.
"""

from repro.bench import captured_store, format_table, publish, web_graph_for
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.sizemodel import graph_bytes

ANALYTICS = ("pagerank", "sssp", "wcc")


def build_rows():
    rows = []
    for dataset in WEB_DATASET_ORDER:
        input_bytes = graph_bytes(web_graph_for(dataset))
        cells = [dataset, input_bytes]
        for analytic in ANALYTICS:
            store = captured_store(analytic, dataset)
            cells.append(store.total_bytes())
            cells.append(store.total_bytes() / input_bytes)
        rows.append(tuple(cells))
    return rows


def test_table3_full_capture_size(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Table 3: full provenance graph size (Query 2 capture)",
        ["Dataset", "Input B",
         "PR B", "PR x", "SSSP B", "SSSP x", "WCC B", "WCC x"],
        rows,
    )
    publish("table3_full_capture_size", table)
    # Shape assertions from the paper: provenance dwarfs the input, and WCC
    # captures less than PageRank (it deactivates vertices early).
    for row in rows:
        pr_ratio, wcc_ratio = row[3], row[7]
        assert pr_ratio > 2.0
        assert wcc_ratio < pr_ratio
