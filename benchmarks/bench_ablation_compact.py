"""Ablation: compact vs unfolded provenance representation (Section 3).

The paper argues the compact format (input vertices annotated with relation
partitions) beats the unfolded graph (one node per vertex-execution): "it is
much cheaper to represent n data items in memory rather than vertex
objects", and reaching a vertex's cross-superstep history takes one step
instead of n. This bench quantifies both claims on a captured store:

* node count: compact vertices vs unfolded execution nodes;
* materialization cost: building the unfolded object graph from the store;
* access cost: reading one vertex's full value history compactly (one
  partition) vs walking evolution edges node by node.
"""

import time

from repro.bench import captured_store, format_table, publish
from repro.graph.datasets import WEB_DATASET_ORDER
from repro.provenance.graphview import unfold


def value_history_compact(store, vertex):
    return sorted((i, d) for _x, d, i in store.partition("value", vertex))


def value_history_unfolded(unfolded, vertex):
    # walk evolution edges hop by hop, like a traversal of the unfolded
    # graph would
    successors = {}
    for (src, dst) in unfolded.evolution_edges:
        if src[0] == vertex:
            successors[src] = dst
    starts = [n for n in unfolded.nodes if n[0] == vertex]
    if not starts:
        return []
    node = min(starts, key=lambda n: n[1])
    history = []
    while node is not None:
        history.append((node[1], unfolded.values.get(node)))
        node = successors.get(node)
    return history


def build_rows():
    rows = []
    for dataset in WEB_DATASET_ORDER[:2]:  # the sizes tell the story
        store = captured_store("pagerank", dataset)
        compact_nodes = len(store.vertices())

        start = time.perf_counter()
        unfolded = unfold(store)
        unfold_seconds = time.perf_counter() - start
        unfolded_nodes = len(unfolded.nodes)

        vertex = next(iter(store.vertices("value")))
        start = time.perf_counter()
        for _ in range(50):
            compact_history = value_history_compact(store, vertex)
        compact_access = (time.perf_counter() - start) / 50
        start = time.perf_counter()
        for _ in range(50):
            unfolded_history = value_history_unfolded(unfolded, vertex)
        unfolded_access = (time.perf_counter() - start) / 50
        assert [i for i, _ in compact_history] == [
            i for i, _ in unfolded_history
        ]
        rows.append(
            (
                dataset,
                compact_nodes,
                unfolded_nodes,
                unfolded_nodes / compact_nodes,
                unfold_seconds,
                unfolded_access / max(compact_access, 1e-9),
            )
        )
    return rows


def test_ablation_compact_vs_unfolded(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        "Ablation: compact vs unfolded provenance representation",
        ["Dataset", "Compact nodes", "Unfolded nodes", "Blowup x",
         "Unfold s", "Access slowdown x"],
        rows,
    )
    publish("ablation_compact", table)
    for row in rows:
        assert row[3] > 2.0  # unfolded graph has many times more nodes